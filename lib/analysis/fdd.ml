(* Reduced ordered interval decision diagrams over the five header
   dimensions, with exact quick/last-match abstract evaluation at the
   leaves. See fdd.mli for the semantic contract. *)

open Netcore

type interval = int * int

let levels = 5

(* Inclusive upper bound of each dimension: proto, src, dst, sport,
   dport. *)
let dim_top = [| 255; 0xFFFF_FFFF; 0xFFFF_FFFF; 0xFFFF; 0xFFFF |]

type reason = {
  lines : int list;
  inputs : Pf.Ast.cond_input list;
  may_default : bool;
}

type verdict =
  | Static of { action : Pf.Ast.action; lines : int list }
  | Reactive of reason

(* The abstract evaluation state threaded through the rule fold, per
   point of flow space. [finals] are (action, line) pairs already
   locked in by a quick rule on some assignment of condition truth
   values; [running] is whether evaluation can still reach later rules
   (false once an unconditional quick rule fired); [currents] are the
   possible current last-matches if evaluation runs off the end;
   [deps] are the conditional rule lines the distinction between the
   possibilities hinges on. Line 0 stands for the implicit default. *)
type st = {
  finals : (Pf.Ast.action * int) list;
  running : bool;
  currents : (Pf.Ast.action * int) list;
  deps : int list;
}

type leaf = L_state of st | L_verdict of verdict

type node =
  | Leaf of leaf
  | N of { level : int; parts : (int * int) array }
      (* parts.(i) = (hi, child id): child for values in
         (previous hi + 1 .. hi]; his strictly ascending, last =
         dim_top.(level); adjacent children distinct; >= 2 parts. *)

type t = int

(* --- the global hash-consed store --- *)

module Tab = Hashtbl.Make (struct
  type t = node

  let equal = ( = )
  let hash = Hashtbl.hash
end)

let dummy = Leaf (L_state { finals = []; running = false; currents = []; deps = [] })
let store = ref (Array.make 1024 dummy)
let store_size = ref 0
let tab : int Tab.t = Tab.create 4096
let get id = !store.(id)

let intern nd =
  match Tab.find_opt tab nd with
  | Some id -> id
  | None ->
      if !store_size >= Array.length !store then begin
        let bigger = Array.make (2 * Array.length !store) dummy in
        Array.blit !store 0 bigger 0 !store_size;
        store := bigger
      end;
      let id = !store_size in
      !store.(id) <- nd;
      incr store_size;
      Tab.add tab nd id;
      id

let sorted l = List.sort_uniq compare l
let mk_state s = intern (Leaf (L_state s))
let mk_verdict v = intern (Leaf (L_verdict v))

(* Canonicalize a (hi, child) partition: merge adjacent equal children,
   collapse the node when only one part remains. *)
let mk_node level parts =
  let rec merge acc = function
    | [] -> List.rev acc
    | [ p ] -> List.rev (p :: acc)
    | (_, c1) :: ((_, c2) :: _ as rest) when c1 = c2 -> merge acc rest
    | p :: rest -> merge (p :: acc) rest
  in
  match merge [] parts with
  | [ (_, c) ] -> c
  | ps -> intern (N { level; parts = Array.of_list ps })

(* The behaviour of [id] along [level] as full-coverage (lo, hi, child)
   segments. Only valid when [id] tests no dimension below [level],
   which every traversal here maintains. *)
let segments level id =
  match get id with
  | N { level = l; parts } when l = level ->
      let segs = ref [] and lo = ref 0 in
      Array.iter
        (fun (hi, c) ->
          segs := (!lo, hi, c) :: !segs;
          lo := hi + 1)
        parts;
      List.rev !segs
  | _ -> [ (0, dim_top.(level), id) ]

(* --- rule header constraints as interval lists per dimension --- *)

(* Sort, drop empties, merge overlapping or adjacent intervals. *)
let norm_ivals ivs =
  let ivs = List.sort compare (List.filter (fun (a, b) -> a <= b) ivs) in
  let rec merge = function
    | (a, b) :: (c, d) :: rest when c <= b + 1 -> merge ((a, max b d) :: rest)
    | p :: rest -> p :: merge rest
    | [] -> []
  in
  merge ivs

(* Complement of a normalized interval list within [0, top]. *)
let complement_ivals top ivs =
  let rec gaps lo = function
    | [] -> if lo <= top then [ (lo, top) ] else []
    | (a, b) :: rest ->
        (if lo < a then [ (lo, a - 1) ] else []) @ gaps (b + 1) rest
  in
  gaps 0 ivs

let prefix_ival p = (Ipv4.to_int (Prefix.first p), Ipv4.to_int (Prefix.last p))
let addr_top = dim_top.(1)

let addr_ivals ~lookup (spec : Pf.Ast.addr_spec option) =
  match spec with
  | None -> Some [ (0, addr_top) ]
  | Some { Pf.Ast.negated; addr } -> (
      let positive =
        match addr with
        | Pf.Ast.Addr_any -> Some [ (0, addr_top) ]
        | Pf.Ast.Addr_prefix p -> Some [ prefix_ival p ]
        | Pf.Ast.Addr_list ps -> Some (List.map prefix_ival ps)
        | Pf.Ast.Addr_table n -> Option.map (List.map prefix_ival) (lookup n)
      in
      match positive with
      | None -> None
      | Some ivs ->
          let ivs = norm_ivals ivs in
          Some (if negated then complement_ivals addr_top ivs else ivs))

let port_ivals top = function
  | None -> [ (0, top) ]
  | Some pm ->
      let lo, hi = Pf.Ast.port_interval pm in
      norm_ivals [ (max 0 lo, min top hi) ]

(* One normalized interval list per dimension, or [None] when the rule
   names a table the [lookup] cannot resolve. *)
let dims_of_rule ~lookup (r : Pf.Ast.rule) =
  match
    (addr_ivals ~lookup r.Pf.Ast.from_.addr, addr_ivals ~lookup r.Pf.Ast.to_.addr)
  with
  | Some src, Some dst ->
      let proto =
        match r.Pf.Ast.proto with
        | None -> [ (0, dim_top.(0)) ]
        | Some p ->
            let v = Proto.to_int p in
            [ (v, v) ]
      in
      Some
        [|
          proto;
          src;
          dst;
          port_ivals dim_top.(3) r.Pf.Ast.from_.port;
          port_ivals dim_top.(4) r.Pf.Ast.to_.port;
        |]
  | _ -> None

(* --- abstract state transitions (§3.3 quick/last-match) --- *)

(* An unconditional rule whose header matches. Once it fires with no
   earlier quick possibility pending, everything before it is dead:
   clear [deps] so reactive classification stays precise. *)
let apply_uncond stt ~action ~line ~quick =
  if not stt.running then stt
  else
    let deps = if stt.finals = [] then [] else stt.deps in
    if quick then
      { finals = sorted ((action, line) :: stt.finals);
        running = false;
        currents = [];
        deps }
    else { stt with currents = [ (action, line) ]; deps }

(* A conditional rule whose header matches: it may or may not fire, so
   merge the fired branch into the current possibilities. *)
let apply_cond stt ~action ~line ~quick =
  if not stt.running then stt
  else
    let merged =
      if quick then { stt with finals = sorted ((action, line) :: stt.finals) }
      else { stt with currents = sorted ((action, line) :: stt.currents) }
    in
    if merged = stt then stt else { merged with deps = sorted (line :: stt.deps) }

(* --- applying one rule to the whole diagram --- *)

(* Split the diagram along the rule's header intervals: inside every
   dimension, rewrite the leaf state with [tr]; anywhere outside, keep
   the existing subdiagram. Memoized on (level, node). *)
let apply_rule root dims tr =
  let memo = Hashtbl.create 64 in
  let rec inside level id =
    if level = levels then
      match get id with
      | Leaf (L_state s) -> mk_state (tr s)
      | _ -> invalid_arg "Fdd: rule applied to a finalized diagram"
    else
      let key = (level, id) in
      match Hashtbl.find_opt memo key with
      | Some r -> r
      | None ->
          let parts = ref [] in
          List.iter
            (fun (lo, hi, child) ->
              let cur = ref lo in
              List.iter
                (fun (a, b) ->
                  let a = max a lo and b = min b hi in
                  if a <= b then begin
                    if a > !cur then parts := (a - 1, child) :: !parts;
                    parts := (b, inside (level + 1) child) :: !parts;
                    cur := b + 1
                  end)
                dims.(level);
              if !cur <= hi then parts := (hi, child) :: !parts)
            (segments level id);
          let r = mk_node level (List.rev !parts) in
          Hashtbl.add memo key r;
          r
  in
  inside 0 root

let map_leaves f root =
  let memo = Hashtbl.create 64 in
  let rec go id =
    match Hashtbl.find_opt memo id with
    | Some r -> r
    | None ->
        let r =
          match get id with
          | Leaf l -> f l
          | N { level; parts } ->
              mk_node level
                (Array.to_list (Array.map (fun (hi, c) -> (hi, go c)) parts))
        in
        Hashtbl.add memo id r;
        r
  in
  go root

(* --- compilation --- *)

let finalize_state line_inputs stt =
  let possible = stt.finals @ if stt.running then stt.currents else [] in
  match sorted (List.map fst possible) with
  | [ a ] -> Static { action = a; lines = sorted (List.map snd possible) }
  | _ ->
      Reactive
        {
          lines = stt.deps;
          inputs = sorted (List.concat_map line_inputs stt.deps);
          may_default = List.exists (fun (_, l) -> l = 0) possible;
        }

let compile_rules ?(default = Pf.Ast.Pass) ~lookup rules =
  let init =
    mk_state
      { finals = []; running = true; currents = [ (default, 0) ]; deps = [] }
  in
  let inputs_by_line = Hashtbl.create 16 in
  let root =
    List.fold_left
      (fun acc (r : Pf.Ast.rule) ->
        match dims_of_rule ~lookup r with
        | None -> acc
        | Some dims ->
            if Array.exists (fun ivs -> ivs = []) dims then acc
            else begin
              let tr =
                if Pf.Ast.cond_free r then
                  apply_uncond ~action:r.action ~line:r.line ~quick:r.quick
                else begin
                  Hashtbl.replace inputs_by_line r.line (Pf.Ast.rule_inputs r);
                  apply_cond ~action:r.action ~line:r.line ~quick:r.quick
                end
              in
              apply_rule acc dims tr
            end)
      init rules
  in
  let line_inputs l =
    Option.value ~default:[] (Hashtbl.find_opt inputs_by_line l)
  in
  map_leaves
    (function
      | L_state s -> mk_verdict (finalize_state line_inputs s)
      | L_verdict v -> mk_verdict v)
    root

let compile ?default env =
  compile_rules ?default ~lookup:(Pf.Env.table env) (Pf.Env.rules env)

(* --- lookup --- *)

let dim_value (fl : Five_tuple.t) = function
  | 0 -> Proto.to_int fl.proto
  | 1 -> Ipv4.to_int fl.src
  | 2 -> Ipv4.to_int fl.dst
  | 3 -> fl.src_port
  | _ -> fl.dst_port

let lookup root flow =
  let rec go id =
    match get id with
    | Leaf (L_verdict v) -> v
    | Leaf (L_state _) -> invalid_arg "Fdd.lookup: unfinalized diagram"
    | N { level; parts } ->
        let v = dim_value flow level in
        (* first part with hi >= v *)
        let lo = ref 0 and hi = ref (Array.length parts - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if fst parts.(mid) >= v then hi := mid else lo := mid + 1
        done;
        go (snd parts.(!lo))
  in
  go root

(* --- statistics --- *)

let node_count root =
  let seen = Hashtbl.create 64 in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      match get id with
      | Leaf _ -> ()
      | N { parts; _ } -> Array.iter (fun (_, c) -> go c) parts
    end
  in
  go root;
  Hashtbl.length seen

let width level (lo, hi) =
  float_of_int (hi - lo + 1) /. float_of_int (dim_top.(level) + 1)

(* Volume fraction of flow space whose leaf satisfies [pred]. Widths
   are dyadic fractions with < 53 significant bits per product, so the
   float arithmetic is exact. *)
let volume pred root =
  let memo = Hashtbl.create 64 in
  let rec go id =
    match Hashtbl.find_opt memo id with
    | Some v -> v
    | None ->
        let v =
          match get id with
          | Leaf (L_verdict v) -> if pred v then 1.0 else 0.0
          | Leaf (L_state _) -> 0.0
          | N { level; parts } ->
              let lo = ref 0 and acc = ref 0.0 in
              Array.iter
                (fun (hi, c) ->
                  acc := !acc +. (width level (!lo, hi) *. go c);
                  lo := hi + 1)
                parts;
              !acc
        in
        Hashtbl.add memo id v;
        v
  in
  go root

let is_static = function Static _ -> true | Reactive _ -> false
let static_coverage root = volume is_static root

(* --- product walks --- *)

type outcome = O_pass | O_block | O_reactive

let outcome = function
  | Static { action = Pf.Ast.Pass; _ } -> O_pass
  | Static { action = Pf.Ast.Block; _ } -> O_block
  | Reactive _ -> O_reactive

let leaf_verdict id =
  match get id with
  | Leaf (L_verdict v) -> v
  | _ -> invalid_arg "Fdd: not a finalized diagram"

(* Walk two full-coverage segment lists in lockstep, calling
   [k lo hi child_a child_b] for each aligned piece. *)
let merge_segments sa sb k =
  let rec go sa sb =
    match (sa, sb) with
    | [], [] -> ()
    | (lo, hi1, c1) :: ra, (_, hi2, c2) :: rb ->
        let hi = min hi1 hi2 in
        k lo hi c1 c2;
        let ra = if hi1 = hi then ra else (hi + 1, hi1, c1) :: ra in
        let rb = if hi2 = hi then rb else (hi + 1, hi2, c2) :: rb in
        go ra rb
    | _ -> ()
  in
  go sa sb

type counterexample = { flow : Five_tuple.t; left : verdict; right : verdict }

type region = {
  r_proto : interval;
  r_src : interval;
  r_dst : interval;
  r_sport : interval;
  r_dport : interval;
}

let region_of bounds =
  {
    r_proto = bounds.(0);
    r_src = bounds.(1);
    r_dst = bounds.(2);
    r_sport = bounds.(3);
    r_dport = bounds.(4);
  }

let flow_of_point pt =
  Five_tuple.make
    ~proto:(Proto.of_int pt.(0))
    ~src:(Ipv4.of_int pt.(1)) ~dst:(Ipv4.of_int pt.(2)) ~src_port:pt.(3)
    ~dst_port:pt.(4)

exception Found of counterexample

let equiv a b =
  let visited = Hashtbl.create 256 in
  let pt = Array.make levels 0 in
  let rec go level ida idb =
    if ida <> idb then
      if level = levels then begin
        let va = leaf_verdict ida and vb = leaf_verdict idb in
        if outcome va <> outcome vb then
          raise (Found { flow = flow_of_point pt; left = va; right = vb })
      end
      else if not (Hashtbl.mem visited (level, ida, idb)) then begin
        Hashtbl.add visited (level, ida, idb) ();
        merge_segments (segments level ida) (segments level idb)
          (fun lo _hi ca cb ->
            pt.(level) <- lo;
            go (level + 1) ca cb)
      end
  in
  try
    go 0 a b;
    Ok ()
  with Found cex -> Error cex

type delta = { d_region : region; d_left : verdict; d_right : verdict }

type diff_report = {
  deltas : delta list;
  changed_fraction : float;
  truncated : bool;
}

let diff ?(limit = 64) a b =
  (* Exact changed volume first; its memo also prunes the bounded
     region enumeration below (identical-outcome subdiagram pairs have
     fraction 0 and contribute no delta). *)
  let memo = Hashtbl.create 256 in
  let rec frac level ida idb =
    if ida = idb then 0.0
    else if level = levels then
      if outcome (leaf_verdict ida) <> outcome (leaf_verdict idb) then 1.0
      else 0.0
    else
      match Hashtbl.find_opt memo (level, ida, idb) with
      | Some v -> v
      | None ->
          let acc = ref 0.0 in
          merge_segments (segments level ida) (segments level idb)
            (fun lo hi ca cb ->
              acc := !acc +. (width level (lo, hi) *. frac (level + 1) ca cb));
          Hashtbl.add memo (level, ida, idb) !acc;
          !acc
  in
  let changed_fraction = frac 0 a b in
  let bounds = Array.init levels (fun l -> (0, dim_top.(l))) in
  let deltas = ref [] and n = ref 0 and truncated = ref false in
  let rec go level ida idb =
    if frac level ida idb > 0.0 then
      if level = levels then
        if !n >= limit then begin
          truncated := true;
          raise Exit
        end
        else begin
          incr n;
          deltas :=
            {
              d_region = region_of bounds;
              d_left = leaf_verdict ida;
              d_right = leaf_verdict idb;
            }
            :: !deltas
        end
      else
        merge_segments (segments level ida) (segments level idb)
          (fun lo hi ca cb ->
            bounds.(level) <- (lo, hi);
            go (level + 1) ca cb)
  and frac level ida idb =
    if ida = idb then 0.0
    else if level = levels then
      if outcome (leaf_verdict ida) <> outcome (leaf_verdict idb) then 1.0
      else 0.0
    else match Hashtbl.find_opt memo (level, ida, idb) with
      | Some v -> v
      | None -> 1.0 (* unseen pair under truncation: conservatively walk *)
  in
  (try go 0 a b with Exit -> ());
  { deltas = List.rev !deltas; changed_fraction; truncated = !truncated }

(* --- region enumeration --- *)

let iter_regions ?(limit = max_int) root f =
  let bounds = Array.init levels (fun l -> (0, dim_top.(l))) in
  let n = ref 0 and truncated = ref false in
  let rec go level id =
    if level = levels then
      if !n >= limit then begin
        truncated := true;
        raise Exit
      end
      else begin
        incr n;
        f (region_of bounds) (leaf_verdict id)
      end
    else
      List.iter
        (fun (lo, hi, c) ->
          bounds.(level) <- (lo, hi);
          go (level + 1) c)
        (segments level id)
  in
  (try go 0 root with Exit -> ());
  !truncated

type slice = {
  s_static : (region * Pf.Ast.action * int list) list;
  s_reactive : (region * reason) list;
  s_coverage : float;
  s_truncated : bool;
}

let static_slice ?(limit = 4096) root =
  let stat = ref [] and react = ref [] in
  let truncated =
    iter_regions ~limit root (fun rg v ->
        match v with
        | Static { action; lines } -> stat := (rg, action, lines) :: !stat
        | Reactive r -> react := (rg, r) :: !react)
  in
  {
    s_static = List.rev !stat;
    s_reactive = List.rev !react;
    s_coverage = static_coverage root;
    s_truncated = truncated;
  }

let may_default = function
  | Static { lines; _ } -> List.mem 0 lines
  | Reactive r -> r.may_default

let fallthrough root =
  let acc = ref [] in
  ignore (iter_regions root (fun rg v -> if may_default v then acc := rg :: !acc));
  List.rev !acc

(* --- regions as flow-space atoms --- *)

(* Greedy aligned decomposition of an address interval into CIDR
   blocks: repeatedly take the largest block aligned at [lo] that does
   not overshoot [hi]. At most 62 blocks per interval. *)
let prefixes_of_interval (ilo, ihi) =
  let acc = ref [] in
  let lo = ref ilo in
  while !lo <= ihi do
    let tz =
      if !lo = 0 then 32
      else begin
        let t = ref 0 and v = ref !lo in
        while !v land 1 = 0 && !t < 32 do
          incr t;
          v := !v lsr 1
        done;
        !t
      end
    in
    let len = ref (32 - tz) in
    while !len < 32 && !lo + (1 lsl (32 - !len)) - 1 > ihi do
      incr len
    done;
    acc := Prefix.make (Ipv4.of_int !lo) !len :: !acc;
    lo := !lo + (1 lsl (32 - !len))
  done;
  List.rev !acc

let proto_set_of_interval (lo, hi) =
  if lo = 0 && hi = dim_top.(0) then Flowspace.proto_any
  else if hi - lo < 128 then
    Flowspace.In (List.init (hi - lo + 1) (fun i -> Proto.of_int (lo + i)))
  else
    Flowspace.NotIn
      (List.init lo (fun i -> Proto.of_int i)
      @ List.init (dim_top.(0) - hi) (fun i -> Proto.of_int (hi + 1 + i)))

let region_to_atoms rg =
  let proto = proto_set_of_interval rg.r_proto in
  List.concat_map
    (fun src ->
      List.map
        (fun dst ->
          { Flowspace.proto; src; dst; sport = rg.r_sport; dport = rg.r_dport })
        (prefixes_of_interval rg.r_dst))
    (prefixes_of_interval rg.r_src)

let region_witness rg =
  Five_tuple.make
    ~proto:(Proto.of_int (fst rg.r_proto))
    ~src:(Ipv4.of_int (fst rg.r_src))
    ~dst:(Ipv4.of_int (fst rg.r_dst))
    ~src_port:(fst rg.r_sport) ~dst_port:(fst rg.r_dport)

let region_to_string rg =
  Flowspace.to_string (Flowspace.of_atoms (region_to_atoms rg))

let lines_to_string lines =
  String.concat ","
    (List.map (function 0 -> "default" | l -> string_of_int l) lines)

let verdict_to_string = function
  | Static { action; lines } ->
      Printf.sprintf "%s (line %s)"
        (match action with Pf.Ast.Pass -> "pass" | Pf.Ast.Block -> "block")
        (lines_to_string lines)
  | Reactive { lines; inputs; may_default } ->
      Printf.sprintf "reactive (lines %s; needs %s%s)" (lines_to_string lines)
        (match inputs with
        | [] -> "flow-time evaluation"
        | _ -> String.concat ", " (List.map Pf.Ast.cond_input_to_string inputs))
        (if may_default then "; may fall through to default" else "")

(* --- structural export for the flow-table compiler --- *)

type tree =
  | T_verdict of verdict
  | T_split of { key : int; level : int; parts : (interval * tree) list }

let tree root =
  let memo = Hashtbl.create 64 in
  let rec go level id =
    if level = levels then T_verdict (leaf_verdict id)
    else
      match Hashtbl.find_opt memo (level, id) with
      | Some t -> t
      | None ->
          let t =
            T_split
              {
                key = id;
                level;
                parts =
                  List.map
                    (fun (lo, hi, c) -> ((lo, hi), go (level + 1) c))
                    (segments level id);
              }
          in
          Hashtbl.add memo (level, id) t;
          t
  in
  go 0 root

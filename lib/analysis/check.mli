(** Whole-ruleset static checks over PF+=2 policies.

    The effective ruleset is concatenated from fragments written by
    mutually-distrustful parties (§3.3–§3.5 of the paper: the
    administrator's header/footer, vendors' [allowed]/[verify] rules,
    third-party rule-makers), which makes shadowed, conflicting, and
    unanswerable rules easy to ship. These checks reason symbolically
    about rule match-spaces ({!Flowspace}) under real quick/last-match
    semantics.

    Finding codes and severities:
    - [undefined-table], [table-cycle], [undefined-macro],
      [undefined-dict] — {e error}: evaluation fails at flow time;
    - [shadowed-rule] — {e warning}: the rule never decides a flow
      (covered by earlier [quick] rules, or always overridden by later
      rules under last-match);
    - [unmatchable-rule] — {e warning}: empty flow-space;
    - [rule-conflict] — {e warning}: two unconditional pass/block rules
      partially overlap with opposite actions (rule order alone decides
      the overlap), with a witness flow;
    - [unanswerable-key] — {e warning}: a [@src]/[@dst] key no daemon
      config, built-in section, or intercept can supply;
    - [duplicate-rule], [unknown-function] — {e warning}: inherited
      from {!Pf.Lint};
    - [default-fallthrough] — {e info}: the residual flow-space that
      reaches the implicit default. *)

type severity = Pf.Lint.severity = Error | Warning | Info

type finding = {
  line : int;  (** 0 when the finding has no single source line. *)
  severity : severity;
  code : string;
  message : string;
  witness : Netcore.Five_tuple.t option;
      (** A concrete flow exhibiting the finding, when one exists. *)
}

val run :
  ?configs:(string * Identxx.Config.t) list ->
  ?where:(int -> string) ->
  Pf.Ast.ruleset ->
  finding list
(** All findings, sorted by line then severity. [configs] are parsed
    ident++ daemon configurations ([*.identxx.conf]); when none are
    given the cross-config key check is skipped (nothing to check
    against). [where] formats cross-references to rule lines inside
    messages (default ["line N"]) — pass a {!Report.locator}-backed
    formatter when analyzing a concatenation of files. *)

val has_errors : finding list -> bool

val of_lint : Pf.Lint.finding -> finding
(** Embed a cheap {!Pf.Lint} finding (no witness) into this type. *)

val daemon_builtin_keys : string list
(** Keys every honest daemon answers from its built-in section,
    regardless of configuration. *)

(* Rendering of analysis findings for humans (text) and machines
   (JSON), plus the file/line bookkeeping needed because the controller
   evaluates the alphabetical concatenation of many .control files
   (§3.4) while findings should point into the file an operator can
   edit. *)

(* [locator files] maps a line number in [String.concat "\n" contents]
   back to the contributing file and its local line. [files] must be in
   concatenation order. *)
let locator files =
  let starts =
    let rec go start acc = function
      | [] -> List.rev acc
      | (name, content) :: rest ->
          let lines =
            1 + String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 content
          in
          go (start + lines) ((name, start) :: acc) rest
    in
    go 1 [] files
  in
  fun line ->
    let rec find best = function
      | [] -> best
      | (name, start) :: rest ->
          if start <= line then find (Some (name, start)) rest else best
    in
    match find None starts with
    | Some (name, start) -> (name, line - start + 1)
    | None -> ("", line)

type located = { file : string; local_line : int; finding : Check.finding }

let locate files findings =
  let loc = locator files in
  List.map
    (fun (f : Check.finding) ->
      if f.Check.line = 0 then { file = ""; local_line = 0; finding = f }
      else
        let file, local_line = loc f.Check.line in
        { file; local_line; finding = f })
    findings

let severity_string = Pf.Lint.severity_string

let text_line l =
  let f = l.finding in
  let where =
    if l.file = "" then "(whole ruleset)"
    else Printf.sprintf "%s:%d" l.file l.local_line
  in
  let witness =
    match f.Check.witness with
    | None -> ""
    | Some w -> Printf.sprintf " (witness: %s)" (Netcore.Five_tuple.to_string w)
  in
  Printf.sprintf "%s: %s [%s] %s%s" where
    (severity_string f.Check.severity)
    f.Check.code f.Check.message witness

let to_text located = String.concat "\n" (List.map text_line located)

(* --- JSON (hand-rolled: the repo carries no JSON dependency) --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_finding l =
  let f = l.finding in
  let fields =
    [
      Printf.sprintf "\"file\": \"%s\"" (json_escape l.file);
      Printf.sprintf "\"line\": %d" l.local_line;
      Printf.sprintf "\"severity\": \"%s\"" (severity_string f.Check.severity);
      Printf.sprintf "\"code\": \"%s\"" (json_escape f.Check.code);
      Printf.sprintf "\"message\": \"%s\"" (json_escape f.Check.message);
    ]
    @
    match f.Check.witness with
    | None -> []
    | Some w ->
        [
          Printf.sprintf "\"witness\": \"%s\""
            (json_escape (Netcore.Five_tuple.to_string w));
        ]
  in
  "{" ^ String.concat ", " fields ^ "}"

let to_json located =
  "[" ^ String.concat ",\n " (List.map json_finding located) ^ "]"

(* Exit-code contract: 1 iff any error-severity finding — warnings and
   info never fail CI. *)
let exit_code findings = if Check.has_errors findings then 1 else 0

open Netcore

type process = {
  pid : int;
  user : string;
  groups : string list;
  exe_path : string;
  isolated : bool;
}

module Flow_key = struct
  type t = Five_tuple.t

  let equal = Five_tuple.equal
  let hash = Five_tuple.hash
end

module Flow_tbl = Hashtbl.Make (Flow_key)

type t = {
  mutable next_pid : int;
  procs : (int, process) Hashtbl.t;
  connections : int Flow_tbl.t; (* flow -> pid *)
  listeners : (int * int, int) Hashtbl.t; (* (proto, port) -> pid *)
  mutable change_listeners : (unit -> unit) list;
}

let create () =
  {
    next_pid = 1000;
    procs = Hashtbl.create 16;
    connections = Flow_tbl.create 16;
    listeners = Hashtbl.create 16;
    change_listeners = [];
  }

let on_change t f = t.change_listeners <- f :: t.change_listeners
let notify_change t = List.iter (fun f -> f ()) (List.rev t.change_listeners)

let spawn t ?pid ?(isolated = false) ~user ~groups ~exe () =
  let pid =
    match pid with
    | Some p -> p
    | None ->
        let p = t.next_pid in
        t.next_pid <- t.next_pid + 1;
        p
  in
  if Hashtbl.mem t.procs pid then
    invalid_arg (Printf.sprintf "Process_table.spawn: pid %d in use" pid);
  let p = { pid; user; groups; exe_path = exe; isolated } in
  Hashtbl.replace t.procs pid p;
  notify_change t;
  p

let kill t ~pid =
  Hashtbl.remove t.procs pid;
  let flows =
    Flow_tbl.fold
      (fun flow p acc -> if p = pid then flow :: acc else acc)
      t.connections []
  in
  List.iter (fun f -> Flow_tbl.remove t.connections f) flows;
  let ports =
    Hashtbl.fold
      (fun key p acc -> if p = pid then key :: acc else acc)
      t.listeners []
  in
  List.iter (fun k -> Hashtbl.remove t.listeners k) ports;
  notify_change t

let ptrace t ~by ~target =
  match (Hashtbl.find_opt t.procs by, Hashtbl.find_opt t.procs target) with
  | None, _ -> Error (Printf.sprintf "ptrace: no such process %d" by)
  | _, None -> Error (Printf.sprintf "ptrace: no such process %d" target)
  | Some tracer, Some traced ->
      if tracer.user <> traced.user then
        Error "ptrace: operation not permitted (different user)"
      else if traced.isolated then
        Error "ptrace: operation not permitted (setgid-protected)"
      else Ok traced

let require_pid t pid =
  if not (Hashtbl.mem t.procs pid) then
    invalid_arg (Printf.sprintf "Process_table: unknown pid %d" pid)

let connect t ~pid ~flow =
  require_pid t pid;
  Flow_tbl.replace t.connections flow pid

let listen t ~pid ~proto ~port =
  require_pid t pid;
  Hashtbl.replace t.listeners (Proto.to_int proto, port) pid

let close_listen t ~pid ~proto ~port =
  match Hashtbl.find_opt t.listeners (Proto.to_int proto, port) with
  | Some p when p = pid -> Hashtbl.remove t.listeners (Proto.to_int proto, port)
  | Some _ | None -> ()

let disconnect t ~flow = Flow_tbl.remove t.connections flow

let proc t pid = Hashtbl.find_opt t.procs pid

let owner_of_flow t ~flow =
  Option.bind (Flow_tbl.find_opt t.connections flow) (proc t)

let owner_of_listener t ~proto ~port =
  Option.bind (Hashtbl.find_opt t.listeners (Proto.to_int proto, port)) (proc t)

let lookup t ~(flow : Five_tuple.t) ~as_source =
  if as_source then owner_of_flow t ~flow
  else
    match owner_of_flow t ~flow:(Five_tuple.reverse flow) with
    | Some p -> Some p
    | None -> owner_of_listener t ~proto:flow.proto ~port:flow.dst_port

let processes t = Hashtbl.fold (fun _ p acc -> p :: acc) t.procs []

(** The ident++ end-host daemon (§3.5).

    The daemon answers controller queries about flows with key-value
    sections assembled from three sources: what the kernel knows (the
    process/user owning the flow, via {!Process_table}), static
    configuration files ([@app] blocks and host-wide pairs), and pairs
    the application registered at run time (the paper's Unix-domain
    socket, here a direct call).

    Section order in a response (later = more trusted by {!Response.latest}):
    + daemon built-ins (userID, groupID, exe-path, exe-hash, name, pid);
    + the executable's [@app] configuration pairs;
    + run-time application pairs for this flow;
    + host-wide administrator pairs (the [/etc/identxx] analogue).

    A daemon can be put in a dishonest {!behaviour} to model the
    compromised end-hosts of §5.3. *)

open Netcore

type behaviour =
  | Honest
  | Silent  (** Answers nothing — a crashed or firewalled daemon. *)
  | Lying of Key_value.section
      (** Replaces the truthful sections with fabricated pairs — a
          compromised host's daemon (§5.3). *)

type t

val create :
  ?behaviour:behaviour ->
  ip:Ipv4.t ->
  processes:Process_table.t ->
  exe_hash:(string -> string option) ->
  unit ->
  t
(** [exe_hash path] returns the hash of the executable image at [path],
    or [None] when unknown. *)

val set_behaviour : t -> behaviour -> unit

val set_signing_key : t -> Idcrypto.Sign.keypair option -> unit
(** When set, every response is authenticated with a final
    {!Signed.sign} section. *)

val load_config : t -> name:string -> string -> (unit, string) result
(** Parse and add a configuration file. Files are kept sorted by [name]
    and applied in that order, like the controller's [.control] files. *)

val register_runtime : t -> flow:Five_tuple.t -> Key_value.section -> unit
(** The application-to-daemon channel: pairs the app supplies for one of
    its flows (e.g. a browser distinguishing user-clicked requests). *)

val clear_runtime : t -> flow:Five_tuple.t -> unit

type role = As_source | As_destination

val answer :
  ?trace:Obs.Trace_context.t ->
  ?decode:float * float ->
  t ->
  peer:Ipv4.t -> proto:Proto.t -> src_port:int -> dst_port:int ->
  keys:string list -> (Response.t * role) option
(** Answer a query about the flow whose far end is [peer]. The daemon
    first tries to interpret itself as the flow's source (an owned
    connection), then as its destination (an accepted connection or a
    listener). [None] when the daemon is {!Silent}.

    Even when no owning process exists, an honest daemon still responds
    with its host-wide pairs — the controller decides what an absent
    [userID] means.

    [trace] is the querier's trace context (from {!Query.t}[.trace]):
    an honest daemon then times its lookup / assemble / sign steps on
    {!clock} and piggybacks them on the response with
    {!Response.attach_trace}, after any signature section. [decode],
    when the caller timed {!Query.decode} itself, is reported as one
    more span. Dishonest daemons ignore both. *)

val queries_answered : t -> int

val clock : t -> unit -> float
(** The daemon's clock (seconds). Defaults to [fun () -> 0.] so
    untimed deployments stay deterministic; {!set_clock} or
    {!set_metrics}'s [?clock] replace it. Callers timing work on the
    daemon's behalf (e.g. {!Host.handle_packet} timing
    {!Query.decode}) must read this clock so span times are
    comparable. *)

val set_clock : t -> (unit -> float) -> unit

val set_metrics :
  t ->
  ?clock:(unit -> float) ->
  ?labels:(string * string) list ->
  Obs.Registry.t ->
  unit
(** Start recording into [registry]: [identxx_daemon_queries_total]
    (label [result="answered"|"silent"]), a service-time histogram
    [identxx_daemon_answer_seconds], and
    [identxx_daemon_responses_signed_total]. [labels] — typically
    [("host", name)] — are added to every series. [clock], when given,
    replaces the daemon {!clock} (the simulator injects sim time,
    [identxxd] wall time). *)

val on_change : t -> (unit -> unit) -> unit
(** Register a callback fired whenever what the daemon would answer may
    have changed: process spawn or exit on the host
    ({!Process_table.on_change}), a configuration (re)load, run-time
    pairs registered or cleared, or a behaviour switch. The controller's
    fast path subscribes to this to invalidate cached host attributes
    (see DESIGN.md, "Flow-setup fast path"). Connection churn does not
    fire — see {!Process_table.on_change}. *)

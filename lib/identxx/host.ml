open Netcore

type t = {
  name : string;
  mac : Mac.t;
  ip : Ipv4.t;
  processes : Process_table.t;
  daemon : Daemon.t;
  exes : (string, string) Hashtbl.t; (* path -> image bytes *)
  hashes : (string, string) Hashtbl.t; (* path -> hex sha256 *)
  mutable next_ephemeral : int;
}

let create ?(behaviour = Daemon.Honest) ~name ~mac ~ip () =
  let processes = Process_table.create () in
  let hashes = Hashtbl.create 8 in
  let daemon =
    Daemon.create ~behaviour ~ip ~processes
      ~exe_hash:(fun path -> Hashtbl.find_opt hashes path)
      ()
  in
  {
    name;
    mac;
    ip;
    processes;
    daemon;
    exes = Hashtbl.create 8;
    hashes;
    next_ephemeral = 50000;
  }

let name t = t.name
let mac t = t.mac
let ip t = t.ip
let daemon t = t.daemon
let set_signing_key t k = Daemon.set_signing_key t.daemon k

let set_metrics t ?clock reg =
  Daemon.set_metrics t.daemon ?clock ~labels:[ ("host", t.name) ] reg
let processes t = t.processes

let install_exe t ~path ~content =
  Hashtbl.replace t.exes path content;
  Hashtbl.replace t.hashes path (Idcrypto.Sha256.hexdigest content)

let exe_hash t ~path = Hashtbl.find_opt t.hashes path

let run t ?pid ?isolated ~user ?groups ~exe () =
  let groups = Option.value ~default:[ user ] groups in
  Process_table.spawn t.processes ?pid ?isolated ~user ~groups ~exe ()

let connect t ~(proc : Process_table.process) ~dst ?src_port ~dst_port
    ?(proto = Proto.Tcp) () =
  let src_port =
    match src_port with
    | Some p -> p
    | None ->
        let p = t.next_ephemeral in
        t.next_ephemeral <- (if p >= 65535 then 50000 else p + 1);
        p
  in
  let flow = Five_tuple.make ~src:t.ip ~dst ~proto ~src_port ~dst_port in
  Process_table.connect t.processes ~pid:proc.pid ~flow;
  flow

let listen t ~(proc : Process_table.process) ~port ?(proto = Proto.Tcp) () =
  Process_table.listen t.processes ~pid:proc.pid ~proto ~port

let handle_packet t pkt =
  (* Decoded by hand rather than through {!Wire.classify} so the decode
     step itself can be timed as the first daemon-side trace span. *)
  match pkt.Packet.eth_payload with
  | Packet.Ip { ip_src = from_ip; ip_dst = to_ip; payload = Packet.Tcp tcp; _ }
    when tcp.Packet.tcp_dst = Wire.port && Ipv4.equal to_ip t.ip -> (
      let clock = Daemon.clock t.daemon in
      let d0 = clock () in
      match Query.decode tcp.Packet.tcp_payload with
      | Error _ -> None
      | Ok query -> (
          let d1 = clock () in
          match
            Daemon.answer ?trace:query.Query.trace ~decode:(d0, d1) t.daemon
              ~peer:from_ip ~proto:query.Query.proto
              ~src_port:query.Query.src_port ~dst_port:query.Query.dst_port
              ~keys:query.Query.keys
          with
          | None -> None
          | Some (response, _role) ->
              Some
                (Wire.response_packet ~to_ip:from_ip ~from_ip:t.ip
                   ~dst_port:tcp.Packet.tcp_src response)))
  | _ -> None

let first_packet t ~flow =
  let pkt = Packet.of_five_tuple flow in
  { pkt with Packet.eth_src = t.mac }

open Netcore

let src = Logs.Src.create "identxx.daemon" ~doc:"ident++ end-host daemon"

module Log = (val Logs.src_log src : Logs.LOG)

type behaviour = Honest | Silent | Lying of Key_value.section

type metrics = {
  m_answered : Obs.Registry.Counter.t;
  m_silent : Obs.Registry.Counter.t;
  m_signed : Obs.Registry.Counter.t;
  m_seconds : Obs.Registry.Histogram.t;
}

type t = {
  ip : Ipv4.t;
  processes : Process_table.t;
  exe_hash : string -> string option;
  mutable behaviour : behaviour;
  mutable signing_key : Idcrypto.Sign.keypair option;
  mutable config_files : (string * Config.t) list; (* sorted by name *)
  runtime : (Five_tuple.t * Key_value.section) list ref;
  mutable answered : int;
  mutable change_listeners : (unit -> unit) list;
  mutable metrics : metrics option;
  mutable d_clock : unit -> float;
      (* Times both the service histogram and trace spans. The default
         is a constant, so untimed deployments stay deterministic. *)
}

let notify_change t = List.iter (fun f -> f ()) (List.rev t.change_listeners)

let create ?(behaviour = Honest) ~ip ~processes ~exe_hash () =
  let t =
    {
      ip;
      processes;
      exe_hash;
      behaviour;
      signing_key = None;
      config_files = [];
      runtime = ref [];
      answered = 0;
      change_listeners = [];
      metrics = None;
      d_clock = (fun () -> 0.);
    }
  in
  (* Identity churn in the process table (spawn/kill) changes what this
     daemon would answer. *)
  Process_table.on_change processes (fun () -> notify_change t);
  t

let on_change t f = t.change_listeners <- f :: t.change_listeners

let clock t = t.d_clock
let set_clock t clock = t.d_clock <- clock

let set_metrics t ?clock ?(labels = []) reg =
  (match clock with Some c -> t.d_clock <- c | None -> ());
  t.metrics <-
    Some
      {
        m_answered =
          Obs.Registry.counter reg
            ~help:"Queries this daemon received, by outcome."
            ~labels:(labels @ [ ("result", "answered") ])
            "identxx_daemon_queries_total";
        m_silent =
          Obs.Registry.counter reg
            ~help:"Queries this daemon received, by outcome."
            ~labels:(labels @ [ ("result", "silent") ])
            "identxx_daemon_queries_total";
        m_signed =
          Obs.Registry.counter reg
            ~help:"Responses carrying a signature section."
            ~labels "identxx_daemon_responses_signed_total";
        m_seconds =
          Obs.Registry.histogram reg
            ~help:"Daemon-side query service time in seconds."
            ~labels "identxx_daemon_answer_seconds";
      }

let set_behaviour t b =
  t.behaviour <- b;
  notify_change t

let set_signing_key t k = t.signing_key <- k

let load_config t ~name content =
  match Config.parse content with
  | Error _ as e -> e
  | Ok cfg ->
      t.config_files <-
        List.sort
          (fun (a, _) (b, _) -> String.compare a b)
          ((name, cfg) :: List.remove_assoc name t.config_files);
      notify_change t;
      Ok ()

let merged_config t =
  List.fold_left
    (fun acc (_, cfg) -> Config.merge acc cfg)
    Config.empty t.config_files

let register_runtime t ~flow section =
  t.runtime := (flow, section) :: !(t.runtime);
  notify_change t

let clear_runtime t ~flow =
  t.runtime :=
    List.filter (fun (f, _) -> not (Five_tuple.equal f flow)) !(t.runtime);
  notify_change t

type role = As_source | As_destination

let basename path =
  match String.rindex_opt path '/' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

let builtin_section t (proc : Process_table.process) =
  let pairs =
    [
      Key_value.pair Key_value.user_id proc.user;
      Key_value.pair Key_value.group_id (String.concat "," proc.groups);
      Key_value.pair "pid" (string_of_int proc.pid);
      Key_value.pair Key_value.app_path proc.exe_path;
      Key_value.pair Key_value.app_name (basename proc.exe_path);
      (* The paper's examples use both [name] (Figs 2-3) and [app-name]
         (Fig 5's verify call); emit the alias so either works. *)
      Key_value.pair "app-name" (basename proc.exe_path);
    ]
  in
  match t.exe_hash proc.exe_path with
  | Some h -> pairs @ [ Key_value.pair Key_value.exe_hash h ]
  | None -> pairs

let runtime_section t flow =
  List.concat_map
    (fun (f, s) -> if Five_tuple.equal f flow then s else [])
    (List.rev !(t.runtime))

let answer ?trace ?decode t ~peer ~proto ~src_port ~dst_port ~keys:_ =
  match t.behaviour with
  | Silent -> None
  | Lying fabricated ->
      (* A compromised daemon does not cooperate with tracing either. *)
      t.answered <- t.answered + 1;
      let flow =
        Five_tuple.make ~src:t.ip ~dst:peer ~proto ~src_port ~dst_port
      in
      Some (Response.make ~flow [ fabricated ], As_source)
  | Honest ->
      t.answered <- t.answered + 1;
      Log.debug (fun m ->
          m "answering query about %s %d->%d (peer %s)" (Proto.to_string proto)
            src_port dst_port (Ipv4.to_string peer));
      (* Span timing is read only for traced queries; untraced answers
         never touch the clock. *)
      let now () = match trace with Some _ -> t.d_clock () | None -> 0. in
      let t_lookup = now () in
      let as_src =
        Five_tuple.make ~src:t.ip ~dst:peer ~proto ~src_port ~dst_port
      in
      let as_dst =
        Five_tuple.make ~src:peer ~dst:t.ip ~proto ~src_port ~dst_port
      in
      let role, flow, proc =
        match Process_table.owner_of_flow t.processes ~flow:as_src with
        | Some p -> (As_source, as_src, Some p)
        | None -> (
            match
              Process_table.lookup t.processes ~flow:as_dst ~as_source:false
            with
            | Some p -> (As_destination, as_dst, Some p)
            | None -> (As_source, as_src, None))
      in
      let t_assemble = now () in
      let cfg = merged_config t in
      let sections =
        match proc with
        | None -> [ cfg.Config.globals ]
        | Some proc ->
            let app_pairs =
              Option.value ~default:[]
                (Config.app cfg ~path:proc.Process_table.exe_path)
            in
            [
              builtin_section t proc;
              app_pairs;
              runtime_section t flow;
              cfg.Config.globals;
            ]
      in
      let response = Response.make ~flow sections in
      let t_sign = now () in
      let response =
        match t.signing_key with
        | Some keypair ->
            (match t.metrics with
            | Some m -> Obs.Registry.Counter.inc m.m_signed
            | None -> ());
            Signed.sign ~keypair response
        | None -> response
      in
      let t_done = now () in
      (* Piggyback this daemon's spans on the answer. Appended after
         the signature section: diagnostics, not an authenticated claim
         (PROTOCOL.md §6's rule for post-signature sections), so the
         signed prefix stays byte-identical to an untraced answer. *)
      let response =
        match trace with
        | None -> response
        | Some (ctx : Obs.Trace_context.t) ->
            let spans =
              (match decode with
              | Some (d0, d1) -> [ ("decode", d0, d1) ]
              | None -> [])
              @ [
                  ("lookup", t_lookup, t_assemble);
                  ("assemble", t_assemble, t_sign);
                ]
              @
              match t.signing_key with
              | Some _ -> [ ("sign", t_sign, t_done) ]
              | None -> []
            in
            Response.attach_trace response ~trace_id:ctx.Obs.Trace_context.trace_id
              ~parent:ctx.Obs.Trace_context.span_id ~spans
      in
      Some (response, role)

let answer ?trace ?decode t ~peer ~proto ~src_port ~dst_port ~keys =
  match t.metrics with
  | None -> answer ?trace ?decode t ~peer ~proto ~src_port ~dst_port ~keys
  | Some m ->
      let t0 = t.d_clock () in
      let r = answer ?trace ?decode t ~peer ~proto ~src_port ~dst_port ~keys in
      Obs.Registry.Histogram.observe m.m_seconds (t.d_clock () -. t0);
      Obs.Registry.Counter.inc
        (match r with None -> m.m_silent | Some _ -> m.m_answered);
      r

let queries_answered t = t.answered

(** ident++ query packets (§3.2).

    A query carries the flow's protocol and ports in its payload; the
    flow's IP addresses ride in the query packet's own IP header ("the
    controller making the query uses the flow's destination IP address
    as the query's source IP address"). The key list is only a hint:
    responders may return additional unsolicited pairs. *)

open Netcore

type t = {
  proto : Proto.t;
  src_port : int;
  dst_port : int;
  keys : string list;
  trace : Obs.Trace_context.t option;
      (** Distributed-tracing context, when the querier traces
          flow setups. Rides the wire as one extra hint key
          (["@trace/<ids>"]) that pre-tracing daemons ignore — see
          doc/PROTOCOL.md. *)
}

val make : flow:Five_tuple.t -> keys:string list -> t
(** Builds an untraced query ([trace = None]).
    @raise Invalid_argument when a key is malformed. *)

val with_trace : t -> Obs.Trace_context.t option -> t
(** The same query carrying (or stripped of) a trace context. *)

val trace_key_prefix : string
(** ["@trace/"] — the hint-key spelling of the trace context. *)

val flow_of : t -> src:Ipv4.t -> dst:Ipv4.t -> Five_tuple.t
(** Reassemble the queried flow from the payload fields plus the
    addresses recovered from the query packet's IP header. *)

val encode : t -> string
(** The on-the-wire payload:
    {v
<PROTO> <SRC PORT> <DST PORT>
<key 0>
<key 1>
...
    v}
    A query carrying a trace context appends one more key line,
    ["@trace/<trace_id>-<span_id>-<s|n>"]. *)

val decode : string -> (t, string) result
(** A key line matching the {!trace_key_prefix} form becomes [trace];
    everything else — including a malformed ["@trace/"] token — stays
    in [keys], so frames without (or with unintelligible) context
    decode exactly as they always did. *)

val parse_header : string -> (Proto.t * int * int, string) result
(** Parse the shared ["<PROTO> <SRC PORT> <DST PORT>"] first line (also
    used by {!Response.decode}). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** A simulated host process/socket table.

    The real daemon "uses the 5-tuple in the query packet to find the
    process ID and user ID associated with the flow using techniques
    similar to lsof" (§3.5). This module is that substrate: it tracks
    which process owns which connection or listening socket, so the
    daemon can answer queries both for flows the host originated and for
    flows a listener would accept. *)

open Netcore

type process = {
  pid : int;
  user : string;
  groups : string list;
  exe_path : string;
  isolated : bool;
      (** The administrator marked this application setgid with a group
          that has no file access; such processes are protected against
          ptrace by their peers (S5.4). *)
}

type t

val create : unit -> t

val spawn :
  t -> ?pid:int -> ?isolated:bool -> user:string -> groups:string list ->
  exe:string -> unit -> process
(** Register a process; [pid] defaults to the next free pid,
    [isolated] to false. *)

val ptrace : t -> by:int -> target:int -> (process, string) result
(** The S5.4 attack: a compromised process [by] tries to subvert
    [target] via exec+ptrace to masquerade as it. Unix semantics: only
    same-user processes can be traced, and never {!process.isolated}
    ones. On success the caller can register flows under the target's
    pid, so the daemon attributes them to the target application. *)

val kill : t -> pid:int -> unit
(** Removes the process and all its sockets. *)

val connect : t -> pid:int -> flow:Five_tuple.t -> unit
(** Record that [pid] owns the client side of [flow] (as the host sees
    it: source = this host). @raise Invalid_argument for unknown pids. *)

val listen : t -> pid:int -> proto:Proto.t -> port:int -> unit
(** Record a listening socket. *)

val close_listen : t -> pid:int -> proto:Proto.t -> port:int -> unit
val disconnect : t -> flow:Five_tuple.t -> unit

val owner_of_flow : t -> flow:Five_tuple.t -> process option
(** Exact connection match (the host is the flow's source). *)

val owner_of_listener : t -> proto:Proto.t -> port:int -> process option
(** Who would accept a flow to this port ("a destination that has yet to
    accept a connection", §3.5). *)

val lookup :
  t -> flow:Five_tuple.t -> as_source:bool -> process option
(** [as_source:true] resolves via the connection table; [as_source:false]
    first tries an accepted connection for the reversed flow, then the
    listener on the flow's destination port. *)

val processes : t -> process list

val on_change : t -> (unit -> unit) -> unit
(** Register a callback fired after every {!spawn} and {!kill} — the
    identity-bearing events: what the daemon would answer about users
    and applications may have changed. Socket churn
    ({!connect}/{!listen}/{!disconnect}) deliberately does {e not} fire
    (it carries no identity change, and firing on every connection would
    defeat any cache of host attributes). *)

(** An end-host: identity, simulated executables, a process table and an
    ident++ daemon, plus the packet-level glue that makes the daemon
    reachable on TCP port 783. *)

open Netcore

type t

val create :
  ?behaviour:Daemon.behaviour -> name:string -> mac:Mac.t -> ip:Ipv4.t -> unit -> t

val name : t -> string
val mac : t -> Mac.t
val ip : t -> Ipv4.t
val daemon : t -> Daemon.t

val set_signing_key : t -> Idcrypto.Sign.keypair option -> unit
(** Authenticate the daemon's responses (see {!Signed}). *)

val set_metrics : t -> ?clock:(unit -> float) -> Obs.Registry.t -> unit
(** {!Daemon.set_metrics} with this host's name as the [host] label. *)

val processes : t -> Process_table.t

(** {2 Executables} *)

val install_exe : t -> path:string -> content:string -> unit
(** Place a simulated executable image on disk; its SHA-256 becomes the
    [exe-hash] the daemon reports. *)

val exe_hash : t -> path:string -> string option
(** Hex SHA-256 of the installed image. *)

(** {2 Running applications} *)

val run :
  t -> ?pid:int -> ?isolated:bool -> user:string -> ?groups:string list ->
  exe:string -> unit -> Process_table.process
(** Start a process. [groups] defaults to [[user]]; [isolated] marks the
    process setgid-protected against ptrace (S5.4). The executable need
    not be installed (then no [exe-hash] is reported). *)

val connect :
  t -> proc:Process_table.process -> dst:Ipv4.t -> ?src_port:int ->
  dst_port:int -> ?proto:Proto.t -> unit -> Five_tuple.t
(** Open a client connection from this host; registers flow ownership
    and returns the flow. [src_port] defaults to an ephemeral port
    allocated per host; [proto] defaults to TCP. *)

val listen : t -> proc:Process_table.process -> port:int -> ?proto:Proto.t -> unit -> unit

(** {2 ident++ on the wire} *)

val handle_packet : t -> Packet.t -> Packet.t option
(** The host's NIC receive path for ident++ purposes: a query packet
    addressed to this host yields the daemon's response packet
    (addressed back to the query's source), anything else [None].
    A {!Daemon.Silent} daemon yields [None]. *)

val first_packet : t -> flow:Five_tuple.t -> Packet.t
(** The initial data-plane packet of a flow (a TCP SYN or UDP datagram)
    with this host's MAC as Ethernet source. *)

open Netcore

type t = {
  proto : Proto.t;
  src_port : int;
  dst_port : int;
  keys : string list;
  trace : Obs.Trace_context.t option;
}

(* The trace context rides as one more key: a key may contain anything
   but ':', CR and LF (§3.2), so "@trace/<ids>" is a perfectly legal
   hint that a pre-tracing daemon simply does not recognize — keys are
   hints it is free to ignore. That is the whole version-tolerance
   story: no framing change, no flag day. *)
let trace_key_prefix = "@trace/"

let make ~(flow : Five_tuple.t) ~keys =
  List.iter
    (fun k ->
      if not (Key_value.valid_key k) then
        invalid_arg ("Query.make: bad key " ^ k))
    keys;
  {
    proto = flow.proto;
    src_port = flow.src_port;
    dst_port = flow.dst_port;
    keys;
    trace = None;
  }

let with_trace t trace = { t with trace }

let flow_of t ~src ~dst =
  Five_tuple.make ~src ~dst ~proto:t.proto ~src_port:t.src_port
    ~dst_port:t.dst_port

let encode t =
  let buf = Buffer.create 64 in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %d\n"
       (String.uppercase_ascii (Proto.to_string t.proto))
       t.src_port t.dst_port);
  List.iter
    (fun k ->
      Buffer.add_string buf k;
      Buffer.add_char buf '\n')
    t.keys;
  (match t.trace with
  | None -> ()
  | Some ctx ->
      Buffer.add_string buf trace_key_prefix;
      Buffer.add_string buf (Obs.Trace_context.to_string ctx);
      Buffer.add_char buf '\n');
  Buffer.contents buf

let parse_header line =
  match String.split_on_char ' ' (String.trim line) with
  | [ proto; sp; dp ] -> (
      match
        (Proto.of_string_opt proto, int_of_string_opt sp, int_of_string_opt dp)
      with
      | Some proto, Some src_port, Some dst_port
        when src_port >= 0 && src_port <= 0xffff && dst_port >= 0
             && dst_port <= 0xffff ->
          Ok (proto, src_port, dst_port)
      | _ -> Error "query: malformed header fields")
  | _ -> Error "query: malformed header line"

let decode s =
  match String.split_on_char '\n' s with
  | [] -> Error "query: empty"
  | header :: rest -> (
      match parse_header header with
      | Error _ as e -> e
      | Ok (proto, src_port, dst_port) ->
          let keys = List.filter (fun l -> String.trim l <> "") rest in
          if List.for_all Key_value.valid_key keys then begin
            (* Recognize the first parsable trace-context hint; every
               other key — including an unparsable "@trace/..." — stays
               an ordinary hint, exactly as an old decoder saw it. *)
            let parse_trace k =
              if String.starts_with ~prefix:trace_key_prefix k then
                Obs.Trace_context.of_string
                  (String.sub k
                     (String.length trace_key_prefix)
                     (String.length k - String.length trace_key_prefix))
              else None
            in
            let trace = List.find_map parse_trace keys in
            let keys =
              match trace with
              | None -> keys
              | Some _ -> List.filter (fun k -> parse_trace k = None) keys
            in
            Ok { proto; src_port; dst_port; keys; trace }
          end
          else Error "query: malformed key")

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "query %s %d->%d keys=[%s]%s" (Proto.to_string t.proto)
    t.src_port t.dst_port
    (String.concat ";" t.keys)
    (match t.trace with
    | None -> ""
    | Some ctx -> " trace=" ^ Obs.Trace_context.to_string ctx)

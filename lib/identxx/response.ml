open Netcore

type t = {
  proto : Proto.t;
  src_port : int;
  dst_port : int;
  sections : Key_value.section list;
}

let make ~(flow : Five_tuple.t) sections =
  {
    proto = flow.proto;
    src_port = flow.src_port;
    dst_port = flow.dst_port;
    sections = List.filter (fun s -> s <> []) sections;
  }

let append_section t section =
  if section = [] then t else { t with sections = t.sections @ [ section ] }

let latest t key =
  List.fold_left
    (fun acc section ->
      match Key_value.find section key with Some v -> Some v | None -> acc)
    None t.sections

let all_values t key =
  List.concat_map
    (fun section ->
      List.filter_map
        (fun (p : Key_value.pair) -> if p.key = key then Some p.value else None)
        section)
    t.sections

let concat_values t key = String.concat "," (all_values t key)

let keys t =
  let seen = Hashtbl.create 16 in
  List.concat_map (fun s -> s) t.sections
  |> List.filter_map (fun (p : Key_value.pair) ->
         if Hashtbl.mem seen p.key then None
         else begin
           Hashtbl.add seen p.key ();
           Some p.key
         end)

let encode t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %d\n"
       (String.uppercase_ascii (Proto.to_string t.proto))
       t.src_port t.dst_port);
  List.iteri
    (fun i section ->
      if i > 0 then Buffer.add_char buf '\n';
      List.iter
        (fun (p : Key_value.pair) ->
          Buffer.add_string buf p.key;
          Buffer.add_string buf ": ";
          Buffer.add_string buf p.value;
          Buffer.add_char buf '\n')
        section)
    t.sections;
  Buffer.contents buf

let parse_pair line =
  match String.index_opt line ':' with
  | None -> Error ("response: missing ':' in " ^ line)
  | Some i ->
      let key = String.sub line 0 i in
      let value =
        let v = String.sub line (i + 1) (String.length line - i - 1) in
        if String.length v > 0 && v.[0] = ' ' then
          String.sub v 1 (String.length v - 1)
        else v
      in
      if Key_value.valid_key key && Key_value.valid_value value then
        Ok { Key_value.key; value }
      else Error ("response: malformed pair " ^ line)

let decode s =
  match String.split_on_char '\n' s with
  | [] -> Error "response: empty"
  | header :: rest -> (
      match Query.parse_header header with
      | Error e -> Error e
      | Ok (proto, src_port, dst_port) ->
          let rec sections current acc = function
            | [] ->
                let acc = if current = [] then acc else List.rev current :: acc in
                Ok (List.rev acc)
            | "" :: rest ->
                if current = [] then sections [] acc rest
                else sections [] (List.rev current :: acc) rest
            | line :: rest -> (
                match parse_pair line with
                | Error _ as e -> e
                | Ok pair -> sections (pair :: current) acc rest)
          in
          (* A trailing newline yields a final "" element; harmless. *)
          (match sections [] [] rest with
          | Error _ as e -> e
          | Ok sections -> Ok { proto; src_port; dst_port; sections }))

(* --- daemon-side trace piggyback ---

   A daemon answering a traced query returns its own span timings as
   one ordinary key-value section; old controllers see three unknown
   pairs and ignore them. The section is appended after signing — the
   "sign" span's own duration cannot ride inside the bytes being
   signed — so it is diagnostics, not an authenticated claim, per the
   post-signature-section rule of doc/PROTOCOL.md §6. *)

let trace_id_key = "trace-id"
let trace_parent_key = "trace-parent"
let trace_spans_key = "trace-spans"

(* Floats must survive the wire byte-exactly for traces to be
   deterministic: shortest decimal form that round-trips. *)
let float_str f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let encode_trace_spans spans =
  String.concat ";"
    (List.map
       (fun (name, t0, t1) ->
         Printf.sprintf "%s@%s+%s" name (float_str t0) (float_str (t1 -. t0)))
       spans)

let decode_trace_spans s =
  let parse_one tok =
    match String.index_opt tok '@' with
    | None -> None
    | Some i -> (
        let name = String.sub tok 0 i in
        let rest = String.sub tok (i + 1) (String.length tok - i - 1) in
        match String.index_opt rest '+' with
        | None -> None
        | Some j -> (
            let start = String.sub rest 0 j in
            let dur = String.sub rest (j + 1) (String.length rest - j - 1) in
            match (float_of_string_opt start, float_of_string_opt dur) with
            | Some t0, Some d when name <> "" -> Some (name, t0, t0 +. d)
            | _ -> None))
  in
  let toks = String.split_on_char ';' s |> List.filter (( <> ) "") in
  let parsed = List.filter_map parse_one toks in
  if List.length parsed = List.length toks then Some parsed else None

let attach_trace t ~trace_id ~parent ~spans =
  append_section t
    [
      Key_value.pair trace_id_key trace_id;
      Key_value.pair trace_parent_key parent;
      Key_value.pair trace_spans_key (encode_trace_spans spans);
    ]

let is_trace_section section =
  Key_value.find section trace_id_key <> None
  && Key_value.find section trace_spans_key <> None

let strip_trace t =
  { t with sections = List.filter (fun s -> not (is_trace_section s)) t.sections }

let trace_info t =
  let tagged =
    List.filter_map
      (fun section ->
        match
          ( Key_value.find section trace_id_key,
            Key_value.find section trace_parent_key,
            Key_value.find section trace_spans_key )
        with
        | Some id, Some parent, Some spans -> (
            match decode_trace_spans spans with
            | Some spans -> Some (id, parent, spans)
            | None -> None)
        | _ -> None)
      t.sections
  in
  match tagged with [] -> None | info :: _ -> Some info

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "response %s %d->%d (%d sections)@."
    (Proto.to_string t.proto) t.src_port t.dst_port
    (List.length t.sections);
  List.iteri
    (fun i s ->
      Format.fprintf ppf "-- section %d --@.%a" i Key_value.pp_section s)
    t.sections

(** ident++ response packets (§3.2).

    A response repeats the flow's protocol and ports, then carries
    key-value pairs in sections separated by empty lines. Each section
    is one source's contribution (the user, the application, the local
    administrator, or a controller on the path that augmented the
    response). Later sections were added later — by parties closer to
    the decision-maker — and are therefore "the most trusted (though not
    necessarily the most trustworthy)" (§3.3). *)

open Netcore

type t = {
  proto : Proto.t;
  src_port : int;
  dst_port : int;
  sections : Key_value.section list;
}

val make : flow:Five_tuple.t -> Key_value.section list -> t
(** Empty sections are dropped (they would corrupt the framing). *)

val append_section : t -> Key_value.section -> t
(** What an intercepting controller does to augment a response: "the
    controller inserts an empty line followed by the key-value pairs it
    wishes to add" (§3.4). Appending an empty section is a no-op. *)

val latest : t -> string -> string option
(** The most recently added binding of the key: sections are searched
    last-to-first. "Indexing the dictionaries will give the latest value
    added to the response" (§3.3). *)

val all_values : t -> string -> string list
(** Every binding of the key in section order (for the [*@src[key]]
    concatenation access of §3.3). *)

val concat_values : t -> string -> string
(** [all_values] joined with [","] — the [*@] form. *)

val keys : t -> string list
(** All distinct keys present, in first-appearance order. *)

val encode : t -> string
(** Wire payload:
    {v
<PROTO> <SRC PORT> <DST PORT>
<key 0>: <value 0>
...

<key n>: <value n>
...
    v} *)

val decode : string -> (t, string) result
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {2 Daemon-side trace piggyback}

    A daemon answering a traced query (see {!Query.t}[.trace]) returns
    its own span timings as one ordinary key-value section —
    [trace-id], [trace-parent] (the querier's span the timings belong
    under) and [trace-spans] (["name@start+duration"] tokens joined
    with [";"], times in seconds on the daemon's clock). Controllers
    that predate tracing see three unknown pairs and ignore them; see
    doc/PROTOCOL.md. *)

val attach_trace :
  t -> trace_id:string -> parent:string ->
  spans:(string * float * float) list -> t
(** Append the trace section. Each span is [(name, start, end_)]. *)

val trace_info : t -> (string * string * (string * float * float) list) option
(** The first trace section, as [(trace_id, parent, spans)]; [None]
    when absent or unintelligible (version tolerance: such a response
    is simply an untraced response). *)

val is_trace_section : Key_value.section -> bool
(** Whether the section carries both {!trace_id_key} and
    {!trace_spans_key} — the shape {!attach_trace} produces. *)

val strip_trace : t -> t
(** The response without its trace section(s). Controllers strip after
    extracting {!trace_info}, so per-flow trace ids never reach policy
    evaluation or the fast-path attribute cache (where they would
    defeat decision-cache key matching). *)

val trace_id_key : string
val trace_parent_key : string
val trace_spans_key : string

(** The flight recorder: an always-on bounded ring of recent
    structured events (packet-in, query sent/settled, decision,
    install, breaker transition, health), cheap enough to leave
    enabled, dumped as a JSONL snapshot when a health rule fires or on
    demand — the post-mortem a point-in-time metrics snapshot cannot
    reconstruct.

    Events are plain [(timestamp, kind, attrs)] triples; call sites
    gate attr formatting on {!enabled} (the {!Span} discipline) so a
    disabled recorder costs one load and one branch — and hot sites
    use {!record_lazy} so an {e enabled} recorder defers the attribute
    formatting too, until the event is actually read. Retention uses
    the span collector's lazy-trim ring: newest-first, trimmed in
    batches so steady-state recording stays O(1) amortised. *)

type t

type event = {
  ev_at : float;  (** Seconds, on the caller's clock. *)
  ev_kind : string;
  ev_attrs : (string * string) list;
}

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** [capacity] (default 4096) bounds retained events; the oldest are
    dropped (and counted) past it. @raise Invalid_argument if
    [capacity < 1]. *)

val null : t
(** A shared, permanently disabled recorder: the default for call
    sites that take a [?recorder] argument. {!set_enabled} on it is a
    no-op. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit
val capacity : t -> int

val record : t -> at:float -> ?attrs:(string * string) list -> string -> unit
(** Append an event of kind [string]. No-op when disabled. *)

val record_lazy :
  t -> at:float -> string -> (string * string) list Lazy.t -> unit
(** {!record}, with the attribute list unforced until the event is
    read by {!events} or {!dump} — the hot-path form: most recorded
    events are evicted unread, so their attrs are never formatted. *)

val count : t -> int
(** Events currently retained. *)

val dropped : t -> int
(** Events evicted by the capacity bound over the recorder's life. *)

val events : t -> event list
(** Retained events, newest first. *)

val clear : t -> unit
(** Drop all retained events and zero the drop counter. *)

val dump : ?reason:string -> at:float -> t -> string
(** JSONL snapshot: a header line
    [{"kind":"flight-recorder","reason":…,"at":…,"events":N,"dropped":D}]
    followed by one [{"at":…,"kind":…,"attrs":{…}}] line per event in
    canonical order — sorted by (at, kind, attrs), which makes dumps
    byte-identical across runs that record the same events in any
    arrival order (e.g. different shard counts). [reason] defaults to
    ["on-demand"]. *)

val dump_to : ?reason:string -> at:float -> file:string -> t -> unit
(** {!dump} written to [file] (["-"] for stdout). *)

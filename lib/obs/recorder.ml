type event = {
  ev_at : float;
  ev_kind : string;
  ev_attrs : (string * string) list;
}

(* Events are stored with their attributes unforced: the hot path pays
   one closure allocation, and the (string formatting) cost of building
   attribute lists is deferred to [events]/[dump] — which a steady-state
   run may never call for most events, since the ring evicts them. *)
type stored = {
  s_at : float;
  s_kind : string;
  s_attrs : (string * string) list Lazy.t;
}

type t = {
  mutable on : bool;
  cap : int;
  mutable ring : stored list; (* newest first *)
  mutable retained : int;
  mutable total : int;
}

let create ?(capacity = 4096) ?(enabled = true) () =
  if capacity < 1 then invalid_arg "Obs.Recorder.create: capacity must be >= 1";
  { on = enabled; cap = capacity; ring = []; retained = 0; total = 0 }

let null = { on = false; cap = 1; ring = []; retained = 0; total = 0 }
let enabled t = t.on
let set_enabled t v = if t != null then t.on <- v
let capacity t = t.cap

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let push t s =
  t.ring <- s :: t.ring;
  t.retained <- t.retained + 1;
  t.total <- t.total + 1;
  (* Lazy trim (the Span collector idiom): let the ring overshoot by
     cap/4 and cut back in one batch, keeping steady-state recording
     O(1) amortised. *)
  if t.retained > t.cap + (t.cap / 4) then begin
    t.ring <- take t.cap t.ring;
    t.retained <- t.cap
  end

let record t ~at ?(attrs = []) kind =
  if t.on then
    push t { s_at = at; s_kind = kind; s_attrs = Lazy.from_val attrs }

let record_lazy t ~at kind attrs =
  if t.on then push t { s_at = at; s_kind = kind; s_attrs = attrs }

let count t = min t.retained t.cap
let dropped t = t.total - count t

let events t =
  List.map
    (fun s ->
      { ev_at = s.s_at; ev_kind = s.s_kind; ev_attrs = Lazy.force s.s_attrs })
    (take t.cap t.ring)

let clear t =
  t.ring <- [];
  t.retained <- 0;
  t.total <- 0

let event_to_json e =
  Json.Obj
    [
      ("at", Json.Num e.ev_at);
      ("kind", Json.Str e.ev_kind);
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) e.ev_attrs));
    ]

let dump ?(reason = "on-demand") ~at t =
  let evs =
    (* Canonical order: by time, then kind, then attrs — so dumps are
       byte-identical across runs that record the same events in any
       arrival order (different shard counts interleave differently). *)
    List.sort
      (fun a b ->
        let c = compare a.ev_at b.ev_at in
        if c <> 0 then c
        else
          let c = String.compare a.ev_kind b.ev_kind in
          if c <> 0 then c else compare a.ev_attrs b.ev_attrs)
      (events t)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Json.to_string
       (Json.Obj
          [
            ("kind", Json.Str "flight-recorder");
            ("reason", Json.Str reason);
            ("at", Json.Num at);
            ("events", Json.Num (float_of_int (List.length evs)));
            ("dropped", Json.Num (float_of_int (dropped t)));
          ]));
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_to_json e));
      Buffer.add_char buf '\n')
    evs;
  Buffer.contents buf

let dump_to ?reason ~at ~file t =
  let s = dump ?reason ~at t in
  if file = "-" then print_string s
  else begin
    let oc = open_out file in
    output_string oc s;
    close_out oc
  end

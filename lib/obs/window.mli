(** Windowed time-series over a {!Registry}: a ring buffer of closed
    windows, each holding the per-series change during the window —
    counter deltas (and their per-second rates), gauge values sampled
    at the close, and histogram bucket deltas.

    The window engine adds the {e time dimension} the point-in-time
    snapshot lacks: "did the packet-in rate from host A spike in the
    last window?" is a lookup here, not a question an exporter can
    answer. Closing a window takes a full {!Registry.snapshot}, so
    callback series ([counter_fn]/[gauge_fn]) are sampled {e at the
    close}, on the caller's clock — the injectable-clock discipline
    that keeps netsim runs deterministic while identxxd closes on wall
    time.

    The engine never schedules anything itself: callers drive it with
    {!tick} (close when the interval has elapsed) or {!close} (close
    unconditionally — the periodic-sim-event and every-N-queries
    drivers). *)

type t

val create : ?depth:int -> interval:float -> now:float -> Registry.t -> t
(** A window engine over [registry], with the first window opening at
    [now]. [interval] is the target window length in seconds; [depth]
    (default 64) is how many closed windows the ring retains.
    @raise Invalid_argument if [interval <= 0] or [depth < 1]. *)

val interval : t -> float
(** The configured window length in seconds. *)

(** Per-series change over one window. *)
type wvalue =
  | W_counter of { delta : int; rate : float }
      (** Monotone increase during the window and its per-second rate.
          A series first seen this window counts from zero. *)
  | W_gauge of float  (** The value sampled at the window close. *)
  | W_histogram of {
      buckets : (float * int) list;
          (** Cumulative observation counts {e within the window}, per
              finite upper bound (the delta of two cumulative
              snapshots is itself cumulative). *)
      sum : float;
      count : int;
    }

type wseries = {
  ws_name : string;
  ws_labels : Registry.labels;
  ws_value : wvalue;
}

type window = {
  w_seq : int;  (** 1-based window sequence number. *)
  w_from : float;
  w_until : float;
  w_series : wseries list;  (** Snapshot order: name, then labels. *)
}

val tick : t -> now:float -> window option
(** Close the current window iff at least [interval] seconds have
    elapsed since it opened. At most one window closes per tick (a
    wall-clock driver that stalls produces one long window, not a
    burst of empty ones). *)

val close : t -> now:float -> window
(** Close the current window unconditionally, spanning from its open
    time to [now]. *)

val windows : t -> window list
(** Retained closed windows, newest first (at most [depth]). *)

val closed : t -> int
(** Total windows closed over the engine's lifetime. *)

val value_of : wvalue -> float
(** The scalar a threshold naturally compares: a counter's rate, a
    gauge's value, a histogram's count rate is not well defined — for
    histograms this is the windowed observation [count]. *)

val merge : wvalue -> wvalue -> wvalue
(** Combine two same-kind window values: counters add deltas and
    rates, gauges add, histograms merge per-bound bucket counts.
    Mixed kinds keep the first value. *)

val grouped :
  window -> metric:string -> by:string list -> (Registry.labels * wvalue) list
(** All of [metric]'s series in the window, grouped by the values of
    the [by] labels (series missing one of them are skipped) with
    everything else {!merge}d away — e.g. grouping
    [identxx_controller_packet_ins_total] by [["src"]] sums shards
    into one per-source-host series, which is what makes health
    evaluation shard-count invariant. [by = []] merges the whole
    metric into one group with empty labels. Groups come back sorted
    by label list. *)

val find : window -> metric:string -> labels:Registry.labels -> wvalue option
(** The single series with exactly these labels, if present. *)

(* --- Prometheus text exposition (format 0.0.4) --- *)

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let escape_help v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* Bucket bounds and sums print like JSON numbers so the two exporters
   agree byte-for-byte on every value. *)
let num f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let label_block labels =
  match labels with
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

(* One extra label prepended to a series' label block (for {le=...}).
   The extra label violates sorted order; Prometheus does not care, and
   putting le last matches common exposition practice. *)
let label_block_with labels extra =
  let all = labels @ [ extra ] in
  label_block all

let type_of_value = function
  | Registry.Counter_v _ -> "counter"
  | Registry.Gauge_v _ -> "gauge"
  | Registry.Histogram_v _ -> "histogram"

let prometheus_of_series series =
  let buf = Buffer.create 1024 in
  let last_header = ref "" in
  List.iter
    (fun (s : Registry.series) ->
      (* HELP/TYPE once per metric name; snapshot order groups names. *)
      if s.Registry.name <> !last_header then begin
        last_header := s.Registry.name;
        if s.Registry.help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" s.Registry.name
               (escape_help s.Registry.help));
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" s.Registry.name
             (type_of_value s.Registry.value))
      end;
      match s.Registry.value with
      | Registry.Counter_v v ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" s.Registry.name
               (label_block s.Registry.labels)
               v)
      | Registry.Gauge_v v ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" s.Registry.name
               (label_block s.Registry.labels)
               (num v))
      | Registry.Histogram_v { buckets; sum; count } ->
          List.iter
            (fun (le, c) ->
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" s.Registry.name
                   (label_block_with s.Registry.labels ("le", num le))
                   c))
            buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" s.Registry.name
               (label_block_with s.Registry.labels ("le", "+Inf"))
               count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" s.Registry.name
               (label_block s.Registry.labels)
               (num sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" s.Registry.name
               (label_block s.Registry.labels)
               count))
    series;
  Buffer.contents buf

let prometheus t = prometheus_of_series (Registry.snapshot t)

(* --- JSON snapshot --- *)

let json_of_series (s : Registry.series) =
  let base = [ ("name", Json.Str s.Registry.name) ] in
  let type_ = [ ("type", Json.Str (type_of_value s.Registry.value)) ] in
  let help =
    if s.Registry.help = "" then []
    else [ ("help", Json.Str s.Registry.help) ]
  in
  let labels =
    match s.Registry.labels with
    | [] -> []
    | labels ->
        [ ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)) ]
  in
  let value =
    match s.Registry.value with
    | Registry.Counter_v v -> [ ("value", Json.Num (float_of_int v)) ]
    | Registry.Gauge_v v -> [ ("value", Json.Num v) ]
    | Registry.Histogram_v { buckets; sum; count } ->
        [
          ( "buckets",
            Json.List
              (List.map
                 (fun (le, c) ->
                   Json.Obj
                     [ ("le", Json.Num le); ("count", Json.Num (float_of_int c)) ])
                 buckets) );
          ("sum", Json.Num sum);
          ("count", Json.Num (float_of_int count));
        ]
  in
  Json.Obj (base @ type_ @ help @ labels @ value)

let json t =
  Json.Obj
    [ ("metrics", Json.List (List.map json_of_series (Registry.snapshot t))) ]

let json_string ?(pretty = true) t = Json.to_string ~pretty (json t)

(* --- parsing a snapshot back (identxx_ctl metrics) --- *)

let series_of_json v =
  let ( let* ) = Result.bind in
  let str_field name v ctx =
    match Option.bind (Json.member name v) Json.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "%s: missing or non-string %S" ctx name)
  in
  let* name = str_field "name" v "metric" in
  let* type_ = str_field "type" v name in
  let help =
    Option.value ~default:""
      (Option.bind (Json.member "help" v) Json.to_str)
  in
  let* labels =
    match Json.member "labels" v with
    | None -> Ok []
    | Some (Json.Obj fields) ->
        let rec conv acc = function
          | [] -> Ok (List.rev acc)
          | (k, Json.Str s) :: rest -> conv ((k, s) :: acc) rest
          | (k, _) :: _ ->
              Error (Printf.sprintf "%s: label %S is not a string" name k)
        in
        conv [] fields
    | Some _ -> Error (Printf.sprintf "%s: labels is not an object" name)
  in
  let num_field field =
    match Option.bind (Json.member field v) Json.to_float with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "%s: missing or non-numeric %S" name field)
  in
  let* value =
    match type_ with
    | "counter" ->
        let* f = num_field "value" in
        Ok (Registry.Counter_v (int_of_float f))
    | "gauge" ->
        let* f = num_field "value" in
        Ok (Registry.Gauge_v f)
    | "histogram" ->
        let* sum = num_field "sum" in
        let* count = num_field "count" in
        let* buckets =
          match Json.member "buckets" v with
          | Some (Json.List items) ->
              let rec conv acc = function
                | [] -> Ok (List.rev acc)
                | item :: rest -> (
                    match
                      ( Option.bind (Json.member "le" item) Json.to_float,
                        Option.bind (Json.member "count" item) Json.to_float )
                    with
                    | Some le, Some c ->
                        conv ((le, int_of_float c) :: acc) rest
                    | _ ->
                        Error
                          (Printf.sprintf "%s: malformed histogram bucket" name))
              in
              conv [] items
          | _ -> Error (Printf.sprintf "%s: missing bucket list" name)
        in
        Ok
          (Registry.Histogram_v
             { buckets; sum; count = int_of_float count })
    | other -> Error (Printf.sprintf "%s: unknown metric type %S" name other)
  in
  Ok { Registry.name; help; labels; value }

let of_json v =
  match Json.member "metrics" v with
  | Some (Json.List items) ->
      let rec conv acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            match series_of_json item with
            | Ok s -> conv (s :: acc) rest
            | Error _ as e -> e)
      in
      conv [] items
  | Some _ -> Error "\"metrics\" is not an array"
  | None -> Error "missing \"metrics\" field"

(** Exporters: render a {!Registry} snapshot as Prometheus text
    exposition format or as a JSON snapshot, and re-render a parsed
    JSON snapshot back to Prometheus text (the [identxx_ctl metrics]
    round trip).

    Both formats are specified, with examples, in
    doc/OBSERVABILITY.md. *)

val prometheus : Registry.t -> string
(** Prometheus text format, version 0.0.4: [# HELP] / [# TYPE] header
    per metric name, one sample line per series, histogram expansion
    into [_bucket{le=...}] / [_sum] / [_count]. Series order follows
    {!Registry.snapshot} (deterministic). *)

val json : Registry.t -> Json.t
(** The snapshot as [{"metrics": [...]}]; each entry carries ["name"],
    ["type"] (["counter"] | ["gauge"] | ["histogram"]), ["help"] (when
    non-empty), ["labels"] (when non-empty), and either ["value"] or
    ["buckets"]/["sum"]/["count"]. Histogram bucket bounds are finite;
    the [+Inf] bucket is implied by ["count"]. *)

val json_string : ?pretty:bool -> Registry.t -> string
(** {!json} rendered with {!Json.to_string} ([pretty] defaults to
    [true]: snapshots are operator-facing files). *)

val of_json : Json.t -> (Registry.series list, string) result
(** Parse a snapshot produced by {!json} back into series — the schema
    check behind [identxx_ctl metrics]. Unknown fields are ignored;
    missing or ill-typed required fields are errors naming the series. *)

val prometheus_of_series : Registry.series list -> string
(** Render parsed series as Prometheus text. For any registry [r],
    [prometheus r] and
    [of_json (json r) |> Result.get_ok |> prometheus_of_series] are
    byte-identical — pinned by a unit test. *)

type labels = (string * string) list

module Counter = struct
  type t = { on : bool ref; mutable v : int }

  let inc c = if !(c.on) then c.v <- c.v + 1

  let add c n =
    if n < 0 then invalid_arg "Obs.Registry.Counter.add: negative increment";
    if !(c.on) then c.v <- c.v + n

  let value c = c.v
end

module Gauge = struct
  type t = { on : bool ref; mutable v : float }

  let set g v = if !(g.on) then g.v <- v
  let add g v = if !(g.on) then g.v <- g.v +. v
  let value g = g.v
end

module Histogram = struct
  type t = {
    on : bool ref;
    les : float array;  (* finite upper bounds, strictly increasing *)
    counts : int array;  (* per-bucket (non-cumulative); +Inf at the end *)
    mutable sum : float;
    mutable count : int;
  }

  let observe h v =
    if !(h.on) then begin
      let n = Array.length h.les in
      (* Small fixed bucket array: a linear scan is branch-predictable
         and allocation-free. *)
      let i = ref 0 in
      while !i < n && v > h.les.(!i) do
        incr i
      done;
      h.counts.(!i) <- h.counts.(!i) + 1;
      h.sum <- h.sum +. v;
      h.count <- h.count + 1
    end

  let count h = h.count
  let sum h = h.sum

  let buckets h =
    let acc = ref 0 in
    Array.to_list
      (Array.mapi
         (fun i le ->
           acc := !acc + h.counts.(i);
           (le, !acc))
         h.les)
end

type instrument =
  | I_counter of Counter.t
  | I_gauge of Gauge.t
  | I_histogram of Histogram.t
  | I_counter_fn of (unit -> int)
  | I_gauge_fn of (unit -> float)

type metric = {
  m_name : string;
  m_help : string;
  m_labels : labels;
  mutable m_instrument : instrument;
}

type t = {
  on : bool ref;
  tbl : (string, metric) Hashtbl.t;  (* keyed by name + encoded labels *)
  kinds : (string, string) Hashtbl.t;
      (* name -> kind: a metric name carries ONE # TYPE in the
         exposition, so every label set under it must agree on kind. *)
}

let create ?(enabled = true) () =
  { on = ref enabled; tbl = Hashtbl.create 64; kinds = Hashtbl.create 64 }
let enabled t = !(t.on)
let set_enabled t v = t.on := v

let reset t =
  Hashtbl.iter
    (fun _ m ->
      match m.m_instrument with
      | I_counter c -> c.Counter.v <- 0
      | I_gauge g -> g.Gauge.v <- 0.
      | I_histogram h ->
          Array.fill h.Histogram.counts 0 (Array.length h.Histogram.counts) 0;
          h.Histogram.sum <- 0.;
          h.Histogram.count <- 0
      | I_counter_fn _ | I_gauge_fn _ -> ())
    t.tbl

(* Prometheus-compatible identifiers, checked at registration so a typo
   fails fast rather than producing an unscrapable exposition. *)
let valid_name name =
  name <> ""
  && (match name.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       name

let valid_label_name name =
  name <> ""
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       name

let normalize_labels name labels =
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg
          (Printf.sprintf "Obs.Registry: bad label name %S on metric %s" k name))
    labels;
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let series_key name labels =
  String.concat "\x00" (name :: List.concat_map (fun (k, v) -> [ k; v ]) labels)

let kind_name = function
  | I_counter _ | I_counter_fn _ -> "counter"
  | I_gauge _ | I_gauge_fn _ -> "gauge"
  | I_histogram _ -> "histogram"

let register t ~help ~labels name make =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Obs.Registry: bad metric name %S" name);
  let labels = normalize_labels name labels in
  let key = series_key name labels in
  match Hashtbl.find_opt t.tbl key with
  | Some m -> m
  | None ->
      let m =
        { m_name = name; m_help = help; m_labels = labels; m_instrument = make () }
      in
      let kind = kind_name m.m_instrument in
      (match Hashtbl.find_opt t.kinds name with
      | Some k0 when k0 <> kind ->
          invalid_arg
            (Printf.sprintf "Obs.Registry: %s is a %s, not a %s" name k0 kind)
      | Some _ -> ()
      | None -> Hashtbl.add t.kinds name kind);
      Hashtbl.add t.tbl key m;
      m

let mismatch name ~wanted ~got =
  invalid_arg
    (Printf.sprintf "Obs.Registry: %s is a %s, not a %s" name (kind_name got)
       wanted)

let counter t ?(help = "") ?(labels = []) name =
  let m =
    register t ~help ~labels name (fun () ->
        I_counter { Counter.on = t.on; v = 0 })
  in
  match m.m_instrument with
  | I_counter c -> c
  | got -> mismatch name ~wanted:"counter" ~got

let gauge t ?(help = "") ?(labels = []) name =
  let m =
    register t ~help ~labels name (fun () -> I_gauge { Gauge.on = t.on; v = 0. })
  in
  match m.m_instrument with
  | I_gauge g -> g
  | got -> mismatch name ~wanted:"gauge" ~got

let default_latency_buckets =
  [ 1e-5; 2.5e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3; 1e-2; 2.5e-2;
    5e-2; 1e-1 ]

let histogram t ?(help = "") ?(labels = []) ?(buckets = default_latency_buckets)
    name =
  let check_buckets () =
    if buckets = [] then
      invalid_arg (Printf.sprintf "Obs.Registry: %s: empty bucket list" name);
    let rec increasing = function
      | a :: (b :: _ as rest) -> a < b && increasing rest
      | _ -> true
    in
    if not (increasing buckets) then
      invalid_arg
        (Printf.sprintf "Obs.Registry: %s: buckets must be strictly increasing"
           name)
  in
  let m =
    register t ~help ~labels name (fun () ->
        check_buckets ();
        let les = Array.of_list buckets in
        I_histogram
          {
            Histogram.on = t.on;
            les;
            counts = Array.make (Array.length les + 1) 0;
            sum = 0.;
            count = 0;
          })
  in
  match m.m_instrument with
  | I_histogram h -> h
  | got -> mismatch name ~wanted:"histogram" ~got

let register_fn t ~help ~labels name make replace =
  let m = register t ~help ~labels name make in
  (* Callback series are replaceable: the closure captures state that a
     re-created subsystem (e.g. a rebuilt cache) must re-bind. *)
  match replace m.m_instrument with
  | Some instrument -> m.m_instrument <- instrument
  | None -> mismatch name ~wanted:"callback" ~got:m.m_instrument

let counter_fn t ?(help = "") ?(labels = []) name f =
  register_fn t ~help ~labels name
    (fun () -> I_counter_fn f)
    (function I_counter_fn _ -> Some (I_counter_fn f) | _ -> None)

let gauge_fn t ?(help = "") ?(labels = []) name f =
  register_fn t ~help ~labels name
    (fun () -> I_gauge_fn f)
    (function I_gauge_fn _ -> Some (I_gauge_fn f) | _ -> None)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { buckets : (float * int) list; sum : float; count : int }

type series = { name : string; help : string; labels : labels; value : value }

let estimate_quantile ~buckets ~count q =
  if count <= 0 || q < 0. || q > 1. then None
  else
    let rank = q *. float_of_int count in
    (* Linear interpolation inside the first bucket whose cumulative
       count reaches the rank (the Prometheus histogram_quantile
       estimator). A rank past every finite bound lands in the +Inf
       bucket, where the best point estimate the layout supports is the
       highest finite bound. *)
    let rec go lower prev_cum = function
      | [] -> Some lower
      | (bound, cum) :: rest ->
          if float_of_int cum >= rank && cum > prev_cum then
            let frac =
              (rank -. float_of_int prev_cum) /. float_of_int (cum - prev_cum)
            in
            Some (lower +. ((bound -. lower) *. frac))
          else go bound cum rest
    in
    go 0. 0 buckets

let snapshot t =
  let rec compare_labels a b =
    match (a, b) with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | (ka, va) :: ra, (kb, vb) :: rb ->
        let c = String.compare ka kb in
        if c <> 0 then c
        else
          let c = String.compare va vb in
          if c <> 0 then c else compare_labels ra rb
  in
  Hashtbl.fold
    (fun _ m acc ->
      let value =
        match m.m_instrument with
        | I_counter c -> Counter_v c.Counter.v
        | I_counter_fn f -> Counter_v (f ())
        | I_gauge g -> Gauge_v g.Gauge.v
        | I_gauge_fn f -> Gauge_v (f ())
        | I_histogram h ->
            Histogram_v
              {
                buckets = Histogram.buckets h;
                sum = h.Histogram.sum;
                count = h.Histogram.count;
              }
      in
      { name = m.m_name; help = m.m_help; labels = m.m_labels; value } :: acc)
    t.tbl []
  |> List.sort (fun a b ->
         let c = String.compare a.name b.name in
         if c <> 0 then c else compare_labels a.labels b.labels)

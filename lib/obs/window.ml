type wvalue =
  | W_counter of { delta : int; rate : float }
  | W_gauge of float
  | W_histogram of { buckets : (float * int) list; sum : float; count : int }

type wseries = {
  ws_name : string;
  ws_labels : Registry.labels;
  ws_value : wvalue;
}

type window = {
  w_seq : int;
  w_from : float;
  w_until : float;
  w_series : wseries list;
}

type t = {
  registry : Registry.t;
  interval : float;
  depth : int;
  mutable opened_at : float;
  mutable baseline : Registry.series list;
  mutable ring : window list; (* newest first *)
  mutable retained : int;
  mutable closed : int;
}

let create ?(depth = 64) ~interval ~now registry =
  if interval <= 0. then invalid_arg "Window.create: interval must be > 0";
  if depth < 1 then invalid_arg "Window.create: depth must be >= 1";
  {
    registry;
    interval;
    depth;
    opened_at = now;
    baseline = Registry.snapshot registry;
    ring = [];
    retained = 0;
    closed = 0;
  }

let interval t = t.interval
let windows t = t.ring
let closed t = t.closed

(* Subtract the previous snapshot's cumulative histogram buckets from
   the current ones. Bucket bounds for a given histogram never change
   after creation, so a positional walk suffices; a series absent from
   the baseline deltas against zero. *)
let hist_delta ~prev ~buckets ~sum ~count =
  match prev with
  | Some (Registry.Histogram_v p) ->
      let prev_of bound =
        match List.assoc_opt bound p.buckets with Some c -> c | None -> 0
      in
      let buckets =
        List.map (fun (bound, c) -> (bound, c - prev_of bound)) buckets
      in
      W_histogram { buckets; sum = sum -. p.sum; count = count - p.count }
  | _ -> W_histogram { buckets; sum; count }

let close t ~now =
  let snap = Registry.snapshot t.registry in
  let key (s : Registry.series) = (s.name, s.labels) in
  let prev = Hashtbl.create (List.length t.baseline) in
  List.iter (fun s -> Hashtbl.replace prev (key s) s.Registry.value) t.baseline;
  let span = now -. t.opened_at in
  let series =
    List.map
      (fun (s : Registry.series) ->
        let before = Hashtbl.find_opt prev (key s) in
        let ws_value =
          match s.value with
          | Registry.Counter_v c ->
              let base =
                match before with Some (Registry.Counter_v b) -> b | _ -> 0
              in
              let delta = c - base in
              let rate = if span > 0. then float_of_int delta /. span else 0. in
              W_counter { delta; rate }
          | Registry.Gauge_v g -> W_gauge g
          | Registry.Histogram_v { buckets; sum; count } ->
              (* Drop the +Inf bucket: it always equals [count]. *)
              let finite =
                List.filter (fun (b, _) -> b <> infinity) buckets
              in
              hist_delta ~prev:before ~buckets:finite ~sum ~count
        in
        { ws_name = s.name; ws_labels = s.labels; ws_value })
      snap
  in
  t.closed <- t.closed + 1;
  let w =
    { w_seq = t.closed; w_from = t.opened_at; w_until = now; w_series = series }
  in
  t.ring <- w :: t.ring;
  t.retained <- t.retained + 1;
  if t.retained > t.depth + (t.depth / 4) then begin
    t.ring <- List.filteri (fun i _ -> i < t.depth) t.ring;
    t.retained <- t.depth
  end;
  t.opened_at <- now;
  t.baseline <- snap;
  w

let tick t ~now =
  if now -. t.opened_at >= t.interval then Some (close t ~now) else None

let value_of = function
  | W_counter { rate; _ } -> rate
  | W_gauge g -> g
  | W_histogram { count; _ } -> float_of_int count

let merge a b =
  match (a, b) with
  | W_counter x, W_counter y ->
      W_counter { delta = x.delta + y.delta; rate = x.rate +. y.rate }
  | W_gauge x, W_gauge y -> W_gauge (x +. y)
  | W_histogram x, W_histogram y ->
      let of_y bound =
        match List.assoc_opt bound y.buckets with Some c -> c | None -> 0
      in
      let merged =
        List.map (fun (bound, c) -> (bound, c + of_y bound)) x.buckets
      in
      (* Bounds only y has (merging differently-bucketed histograms). *)
      let extra =
        List.filter (fun (b, _) -> not (List.mem_assoc b x.buckets)) y.buckets
      in
      let buckets =
        List.sort (fun (a, _) (b, _) -> compare a b) (merged @ extra)
      in
      W_histogram
        { buckets; sum = x.sum +. y.sum; count = x.count + y.count }
  | other, _ -> other

let grouped w ~metric ~by =
  let groups = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun ws ->
      if ws.ws_name = metric then
        let kept =
          List.filter_map
            (fun k ->
              match List.assoc_opt k ws.ws_labels with
              | Some v -> Some (k, v)
              | None -> None)
            by
        in
        if List.length kept = List.length by then begin
          (match Hashtbl.find_opt groups kept with
          | Some v -> Hashtbl.replace groups kept (merge v ws.ws_value)
          | None ->
              order := kept :: !order;
              Hashtbl.replace groups kept ws.ws_value)
        end)
    w.w_series;
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (List.map (fun k -> (k, Hashtbl.find groups k)) !order)

let find w ~metric ~labels =
  List.find_map
    (fun ws ->
      if ws.ws_name = metric && ws.ws_labels = labels then Some ws.ws_value
      else None)
    w.w_series

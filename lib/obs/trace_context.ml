(* Deterministic ids: netsim traces must be byte-reproducible, so ids
   are derived by hashing the caller's seed (the flow 5-tuple) and a
   per-run sequence number — no Random, no clock. FNV-1a is enough for
   distribution here; these ids need to be unique within a run and
   stable across runs, not adversary-resistant. *)

type t = { trace_id : string; span_id : string; sampled : bool }

let fnv_offset = 0x811c9dc5
let fnv_prime = 0x01000193

let fnv1a basis s =
  let h = ref basis in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * fnv_prime land 0xffffffff)
    s;
  !h

(* Two independent 32-bit lanes (different bases) make the 64-bit trace
   id; a single lane makes the 32-bit span id. *)
let hash64 s =
  Printf.sprintf "%08x%08x" (fnv1a fnv_offset s)
    (fnv1a (fnv_offset lxor 0x5bd1e995) s)

let hash32 s = Printf.sprintf "%08x" (fnv1a fnv_offset s)

let make ~seed ~seq ~sampled =
  let material = Printf.sprintf "%s#%d" seed seq in
  { trace_id = hash64 material; span_id = hash32 ("root:" ^ material); sampled }

let child t n =
  { t with span_id = hash32 (Printf.sprintf "%s:%s:%d" t.trace_id t.span_id n) }

let unit_fraction id = float_of_int (fnv1a fnv_offset id) /. 4294967296.

let to_string t =
  Printf.sprintf "%s-%s-%c" t.trace_id t.span_id (if t.sampled then 's' else 'n')

let is_hex s =
  String.for_all (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false) s

let of_string s =
  match String.split_on_char '-' s with
  | [ trace_id; span_id; flag ]
    when String.length trace_id = 16
         && is_hex trace_id
         && String.length span_id = 8
         && is_hex span_id
         && (flag = "s" || flag = "n") ->
      Some { trace_id; span_id; sampled = flag = "s" }
  | _ -> None

let equal a b = a = b
let pp ppf t = Format.pp_print_string ppf (to_string t)

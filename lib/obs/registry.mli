(** The metrics registry: named counters, gauges, and fixed-bucket
    latency histograms, each with an optional label set.

    Design constraints (see doc/OBSERVABILITY.md):
    - {e O(1) hot-path record}: incrementing a counter or observing a
      histogram touches a handful of words, no allocation, no search.
    - {e Zero-cost when disabled}: every record operation is gated on a
      shared [enabled] flag (the {!Sim.Trace} idiom), so a disabled
      registry costs one load and one branch per call site. The bench
      suite's [obs] group pins this.
    - {e Deterministic export}: {!snapshot} orders series by name, then
      by label list, so exporter output is stable across runs and can
      be pinned by cram tests.

    Instruments are registered get-or-create: asking twice for the same
    (name, label set) returns the {e same} instrument, so independent
    subsystems can safely contribute to one series. Registering an
    existing name with a different instrument kind raises
    [Invalid_argument]. *)

type t

val create : ?enabled:bool -> unit -> t
(** Recording is on by default; [~enabled:false] starts the registry
    disabled (instruments can still be registered and read). *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** Flips recording for every instrument of this registry at once. *)

val reset : t -> unit
(** Zero every counter, gauge, and histogram (callback series are
    unaffected: they sample live state). *)

type labels = (string * string) list
(** Label pairs. Order is irrelevant: labels are sorted by name on
    registration, so [[("a","1");("b","2")]] and
    [[("b","2");("a","1")]] identify the same series. *)

module Counter : sig
  type t

  val inc : t -> unit
  val add : t -> int -> unit
  (** @raise Invalid_argument on negative increments (counters are
      monotone). *)

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  (** Lands in the first bucket whose upper bound is [>=] the value
      (Prometheus [le] semantics); values above every bound land in the
      implicit [+Inf] bucket. *)

  val count : t -> int
  val sum : t -> float

  val buckets : t -> (float * int) list
  (** Cumulative counts per finite upper bound, in bound order ([+Inf]
      is {!count}). *)
end

val counter : t -> ?help:string -> ?labels:labels -> string -> Counter.t
val gauge : t -> ?help:string -> ?labels:labels -> string -> Gauge.t

val histogram :
  t -> ?help:string -> ?labels:labels -> ?buckets:float list -> string ->
  Histogram.t
(** [buckets] are finite upper bounds, strictly increasing (defaults to
    {!default_latency_buckets}). When the series already exists the
    [buckets] argument is ignored.
    @raise Invalid_argument if [buckets] is empty or not increasing. *)

val counter_fn : t -> ?help:string -> ?labels:labels -> string -> (unit -> int) -> unit
(** A callback counter: the closure is sampled at {!snapshot} time.
    Used to surface counters a subsystem already keeps (e.g. the
    fast-path cache counters) without double-counting on the hot
    path. Re-registering the same series replaces the callback. *)

val gauge_fn : t -> ?help:string -> ?labels:labels -> string -> (unit -> float) -> unit
(** A callback gauge sampled at {!snapshot} time (cache sizes, pending
    tables, breaker state). Re-registering replaces the callback. *)

val default_latency_buckets : float list
(** Upper bounds in seconds, spanning 10 us to 100 ms — sized for
    simulated flow-setup and query round-trip times. *)

(** {2 Snapshots}

    The exporters ({!Export}) work from an immutable snapshot. *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { buckets : (float * int) list; sum : float; count : int }
      (** [buckets] are cumulative counts per finite upper bound. *)

type series = {
  name : string;
  help : string;
  labels : labels;  (** Sorted by label name. *)
  value : value;
}

val snapshot : t -> series list
(** Sorted by name, then labels. Callback series are sampled here. *)

val estimate_quantile :
  buckets:(float * int) list -> count:int -> float -> float option
(** Prometheus-style quantile estimate from cumulative bucket counts
    ([buckets] as in {!Histogram_v}: cumulative per finite upper bound,
    in bound order; [count] the total including the implicit [+Inf]
    bucket). Linear interpolation within the first bucket whose
    cumulative count reaches [q * count], assuming observations spread
    uniformly inside a bucket; a rank past every finite bound returns
    the highest finite bound. [None] when [count = 0] or [q] is outside
    [0, 1]. *)

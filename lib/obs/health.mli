(** The windowed health rule engine: declarative anomaly rules
    evaluated on each {!Window} close, firing typed health events.

    A rule names a metric, how to group its series (summing away
    incidental labels like [controller] and [shard], which keeps
    evaluation shard-count invariant), and a detection kind —
    threshold, rate-of-change, burn-rate over N windows, quantile
    skew, or cross-group imbalance. Firing is {e edge-triggered}: a
    (rule, group) pair emits one event when its condition becomes
    true and re-arms only after a window in which it is false, so a
    sustained anomaly produces one event, not one per window.

    Each fired event is exported three ways: the [identxx_health_*]
    metrics, a force-sampled root span named ["health"] (error traces
    are never lost), and a ["health"] event in the {!Recorder} —
    after which the [on_fire] callback runs, so a dump taken there
    already contains the event that triggered it. *)

type kind =
  | Threshold of { over : float }
      (** Fires when a group's windowed value ({!Window.value_of}:
          counter rate per second, gauge level, histogram count)
          exceeds [over]. *)
  | Rate_of_change of { factor : float; min_rate : float }
      (** Fires when the value exceeds [factor] times the previous
          window's value for the same group, and at least
          [min_rate] in absolute terms (so idle → trickle does not
          page). *)
  | Burn_rate of { over : float; windows : int }
      (** Fires when the value summed over the last [windows] closed
          windows (including the current one) exceeds [over]. *)
  | Quantile_skew of { q_hi : float; q_lo : float; min_ratio : float;
                       min_count : int }
      (** Histogram rules only: fires when the window's
          [q_hi]-quantile estimate exceeds [min_ratio] times the
          [q_lo] estimate, with at least [min_count] observations —
          the warm/cold latency gap an external prober could
          measure. *)
  | Imbalance of { min_ratio : float; min_value : float }
      (** Cross-group: fires (against the maximal group) when the
          largest group value exceeds [min_ratio] times the smallest
          and at least [min_value] absolutely. Needs >= 2 groups. *)

type rule = {
  r_name : string;  (** Event name, e.g. [packet_in_surge]. *)
  r_help : string;
  r_metric : string;  (** Registry metric the rule reads. *)
  r_group_by : string list;
      (** Labels that identify a group; all others are summed away. *)
  r_label_as : string option;
      (** Rename the single [r_group_by] label on the fired event
          (e.g. group by [src], report it as [host]). *)
  r_kind : kind;
}

val rule :
  name:string -> help:string -> metric:string -> ?group_by:string list ->
  ?label_as:string -> kind -> rule

val default_rules : rule list
(** The shipped rule set — see doc/OBSERVABILITY.md for the catalog:
    [packet_in_surge], [deny_latency_skew], [breaker_flap],
    [shard_queue_imbalance], [table_eviction_pressure],
    [daemon_query_surge]. *)

type event = {
  e_rule : string;
  e_at : float;  (** The close time of the firing window. *)
  e_window : int;  (** {!Window.window.w_seq} of the firing window. *)
  e_labels : (string * string) list;  (** The group, post-[r_label_as]. *)
  e_value : float;  (** The observed value. *)
  e_threshold : float;  (** The effective threshold it exceeded. *)
}

type t

val create :
  ?rules:rule list -> ?recorder:Recorder.t -> ?spans:Span.t ->
  registry:Registry.t -> Window.t -> t
(** An engine evaluating [rules] (default {!default_rules}) against
    windows closed on the given {!Window} engine. Registers
    [identxx_health_windows_total], [identxx_health_events_total{rule}]
    (one series per rule, pre-registered so zero is visible), and
    [identxx_health_active{rule}] on [registry]. *)

val set_on_fire : t -> (event -> unit) -> unit
(** Called once per fired event, after the event has been recorded in
    metrics, span, and recorder — the dump-on-trigger hook. *)

val step : t -> now:float -> event list
(** {!Window.tick}: close a window if its interval has elapsed, and if
    so evaluate every rule against it. Returns the events fired (often
    none). *)

val force_step : t -> now:float -> event list
(** {!Window.close}: close unconditionally and evaluate. The driver
    for deterministic sim schedules and every-N-queries daemons. *)

val events : t -> event list
(** All events fired over the engine's lifetime, oldest first. *)

val windows_closed : t -> int
val rules : t -> rule list

val active : t -> (string * (string * string) list) list
(** Currently-firing (rule, group) pairs, sorted. *)

val event_to_json : event -> Json.t

val kind_to_string : kind -> string
(** Human-readable one-liner, e.g. [threshold(rate > 500)] — the
    [identxx_ctl health --rules] listing. *)

(** Trace context for cross-host distributed tracing.

    A context names one trace (the whole flow-setup exchange) and one
    span within it (the sender's current unit of work), plus the head
    sampling decision, so every party — controller, daemons on both
    ends — can attribute its timings to the same tree.

    Ids are {e deterministic}: derived by hashing a caller-supplied seed
    (the flow's 5-tuple rendering) and a per-run sequence number, never
    from a clock or PRNG, so simulated runs reproduce byte-identical
    traces. The wire rendering is a single token valid as an ident++
    query key (hex and dashes only — no [':'], CR or LF; see
    doc/PROTOCOL.md). *)

type t = {
  trace_id : string;  (** 16 lowercase hex chars, shared by the whole tree. *)
  span_id : string;  (** 8 lowercase hex chars, the sender's span. *)
  sampled : bool;  (** Head sampling decision, made at the root. *)
}

val make : seed:string -> seq:int -> sampled:bool -> t
(** The root context of a new trace. [seed] should identify the traced
    work (the controller passes the flow 5-tuple string); [seq]
    disambiguates repeats of the same seed within a run. *)

val child : t -> int -> t
(** A derived context for the [n]-th child unit of work: same trace id
    and sampling decision, fresh deterministic span id. *)

val unit_fraction : string -> float
(** Hash an id into [\[0, 1)] — the deterministic coin for head
    sampling (compare against a sample rate). *)

val to_string : t -> string
(** ["<trace_id>-<span_id>-s"] (sampled) or [...-n] (not sampled). *)

val of_string : string -> t option
(** Inverse of {!to_string}; [None] for anything malformed (a
    version-tolerant decoder treats such tokens as ordinary data). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

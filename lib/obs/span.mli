(** Flow-setup spans: one structured, timestamped record per table-miss
    flow, covering packet-in → per-host queries (child spans) →
    decision → flow install.

    A span has a name, start/end timestamps (float seconds — the
    controller feeds simulated time), key-value attributes, point-in-
    time events (cache hits, breaker short-circuits, retries,
    rejections), and child spans (one per ident++ query). Finished root
    spans are retained in a capacity-capped buffer and exportable as a
    JSON event stream (see doc/OBSERVABILITY.md for the schema).

    Like {!Registry}, the collector is enabled-gated: when disabled,
    {!start} hands back the shared {!null} span, every operation on
    which is a no-op — callers should gate any attribute {e formatting}
    on {!enabled}, the {!Sim.Trace} discipline. *)

type t
(** A span collector. *)

type span

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** Retains the most recent [capacity] (default 1024) finished root
    spans; enabled by default. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val null : span
(** The dead span: returned by {!start} when the collector is disabled;
    every operation on it is a no-op. *)

val is_live : span -> bool
(** [false] exactly for {!null}. *)

val start :
  t -> at:float -> ?parent:span -> ?attrs:(string * string) list ->
  string -> span
(** Opens a span. With [?parent] the new span is recorded as a child of
    (and retained with) the parent instead of entering the root buffer.
    A child of {!null} is {!null}. *)

val event : span -> at:float -> ?attrs:(string * string) list -> string -> unit
(** A point-in-time occurrence within the span. *)

val set_attr : span -> string -> string -> unit
(** Sets (or overwrites) an attribute. *)

val finish : t -> at:float -> span -> unit
(** Closes the span; root spans enter the retained buffer. Finishing a
    span twice, or finishing {!null}, is a no-op. *)

val duration : span -> float option
(** [end - start], once finished. *)

(** {2 Reading the collector} *)

val finished : t -> span list
(** Retained finished root spans, oldest first. *)

val count : t -> int
(** Total root spans finished over the collector's lifetime, including
    any the capacity cap has since dropped. *)

val clear : t -> unit

val name : span -> string
val attrs : span -> (string * string) list
val events : span -> (float * string * (string * string) list) list
val children : span -> span list

val to_json : span -> Json.t
(** One span as a JSON object: [{"name", "start", "end", "attrs",
    "events", "children"}]. *)

val export : t -> Json.t
(** The whole collector: [{"spans": [...], "dropped": n}] where
    [dropped] counts spans lost to the capacity cap. *)

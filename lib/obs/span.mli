(** Flow-setup spans: one structured, timestamped record per table-miss
    flow, covering packet-in → per-host queries (child spans) →
    decision → flow install.

    A span has a name, start/end timestamps (float seconds — the
    controller feeds simulated time), key-value attributes, point-in-
    time events (cache hits, breaker short-circuits, retries,
    rejections), and child spans (one per ident++ query). Finished root
    spans are retained in a capacity-capped buffer and exportable as a
    JSON event stream (see doc/OBSERVABILITY.md for the schema).

    Like {!Registry}, the collector is enabled-gated: when disabled,
    {!start} hands back the shared {!null} span, every operation on
    which is a no-op — callers should gate any attribute {e formatting}
    on {!enabled}, the {!Sim.Trace} discipline. *)

type t
(** A span collector. *)

type span

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** Retains the most recent [capacity] (default 1024) finished root
    spans; enabled by default. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** {2 Head sampling}

    The collector keeps a fraction of root spans, decided at the head
    of the trace (so the decision can ride the wire with the trace
    context) but {e enforced} only when the root finishes — an
    unsampled root stays live and collects children and timings, and
    {!force_sample} can revive it on the way (the controller does so on
    deny, timeout, rejection and breaker trips, so error traces are
    never lost). Spans dropped this way are counted apart from capacity
    drops. *)

val sample_rate : t -> float
(** In [\[0, 1\]]; 1 (the default) keeps everything. *)

val set_sample_rate : t -> float -> unit
(** @raise Invalid_argument outside [\[0, 1\]]. *)

val should_sample : t -> id:string -> bool
(** The head coin for a new trace: deterministic from the trace id
    ({!Trace_context.unit_fraction} against the rate), so identical
    runs sample identically. *)

val null : span
(** The dead span: returned by {!start} when the collector is disabled;
    every operation on it is a no-op. *)

val is_live : span -> bool
(** [false] exactly for {!null}. *)

val start :
  t -> at:float -> ?parent:span -> ?sampled:bool ->
  ?attrs:(string * string) list -> string -> span
(** Opens a span. With [?parent] the new span is recorded as a child of
    (and retained with) the parent instead of entering the root buffer.
    A child of {!null} is {!null}. [?sampled] (default [true]) is the
    head-sampling decision for a root span: an unsampled root behaves
    normally while open but is discarded — and counted in
    {!sampled_out} — when finished, unless {!force_sample} ran. *)

val event : span -> at:float -> ?attrs:(string * string) list -> string -> unit
(** A point-in-time occurrence within the span. *)

val set_attr : span -> string -> string -> unit
(** Sets (or overwrites) an attribute. *)

val force_sample : span -> unit
(** Revise the head decision: keep this root span regardless of the
    sampling coin. The always-sample hook for error traces; a no-op on
    {!null} and on non-root spans (children live or die with their
    root). *)

val is_sampled : span -> bool
(** The current keep decision ([false] for {!null}). *)

val finish : t -> at:float -> span -> unit
(** Closes the span; root spans enter the retained buffer. Finishing a
    span twice, or finishing {!null}, is a no-op. *)

val duration : span -> float option
(** [end - start], once finished. *)

(** {2 Reading the collector} *)

val finished : t -> span list
(** Retained finished root spans, oldest first. *)

val count : t -> int
(** Total {e kept} root spans finished over the collector's lifetime,
    including any the capacity cap has since dropped (sampled-out spans
    are counted separately, in {!sampled_out}). *)

val sampled_out : t -> int
(** Root spans discarded by head sampling. *)

val capacity_dropped : t -> int
(** Kept root spans since lost to the capacity cap. *)

val clear : t -> unit

val name : span -> string
val attrs : span -> (string * string) list
val events : span -> (float * string * (string * string) list) list
val children : span -> span list

val to_json : span -> Json.t
(** One span as a JSON object: [{"name", "start", "end", "attrs",
    "events", "children"}]. *)

val export : t -> Json.t
(** The whole collector: [{"spans": [...], "dropped": n,
    "sampled_out": m}] — [dropped] counts spans lost to the capacity
    cap, [sampled_out] spans discarded by head sampling; the two causes
    are never conflated. *)

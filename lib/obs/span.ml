type span = {
  live : bool;
  root : bool;
  sp_name : string;
  sp_start : float;
  mutable sp_end : float option;
  mutable sp_keep : bool;  (* head-sampling decision, revisable *)
  mutable sp_attrs : (string * string) list;  (* newest first *)
  mutable sp_events : (float * string * (string * string) list) list;
  mutable sp_children : span list;  (* newest first *)
}

type t = {
  capacity : int;
  mutable on : bool;
  mutable rate : float;  (* head sample rate in [0, 1] *)
  mutable roots : span list;  (* finished, newest first *)
  mutable retained : int;
  mutable total : int;
  mutable sampled_out : int;
}

let create ?(capacity = 1024) ?(enabled = true) () =
  if capacity <= 0 then invalid_arg "Obs.Span.create: capacity must be positive";
  {
    capacity;
    on = enabled;
    rate = 1.;
    roots = [];
    retained = 0;
    total = 0;
    sampled_out = 0;
  }

let enabled t = t.on
let set_enabled t v = t.on <- v
let sample_rate t = t.rate

let set_sample_rate t r =
  if not (r >= 0. && r <= 1.) then
    invalid_arg "Obs.Span.set_sample_rate: rate must be in [0, 1]";
  t.rate <- r

(* The head-sampling coin: deterministic from the trace id, so a flow
   samples identically on every run (and on every party holding the
   same id). *)
let should_sample t ~id =
  t.rate >= 1. || (t.rate > 0. && Trace_context.unit_fraction id < t.rate)

let null =
  {
    live = false;
    root = false;
    sp_name = "";
    sp_start = 0.;
    sp_end = None;
    sp_keep = false;
    sp_attrs = [];
    sp_events = [];
    sp_children = [];
  }

let is_live sp = sp.live

let start t ~at ?parent ?(sampled = true) ?(attrs = []) name =
  let parent_dead = match parent with Some p -> not p.live | None -> false in
  if (not t.on) || parent_dead then null
  else begin
    let sp =
      {
        live = true;
        root = parent = None;
        sp_name = name;
        sp_start = at;
        sp_end = None;
        sp_keep = sampled;
        sp_attrs = List.rev attrs;
        sp_events = [];
        sp_children = [];
      }
    in
    (match parent with
    | Some p -> p.sp_children <- sp :: p.sp_children
    | None -> ());
    sp
  end

let event sp ~at ?(attrs = []) name =
  if sp.live then sp.sp_events <- (at, name, attrs) :: sp.sp_events

let set_attr sp k v =
  if sp.live then sp.sp_attrs <- (k, v) :: List.remove_assoc k sp.sp_attrs

let force_sample sp = if sp.live then sp.sp_keep <- true
let is_sampled sp = sp.sp_keep

(* Roots are retained newest-first with the same lazy trim as
   Audit.record, so finishing stays O(1) amortized. *)
let retain t sp =
  t.total <- t.total + 1;
  t.roots <- sp :: t.roots;
  t.retained <- t.retained + 1;
  if t.retained > t.capacity + (t.capacity / 4) then begin
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    t.roots <- take t.capacity t.roots;
    t.retained <- t.capacity
  end

(* The sampling decision is only enforced here, at the end of the root:
   an unsampled root stays live while open, so a late error (deny,
   timeout, breaker trip) can still {!force_sample} it and lose no
   children. *)
let finish t ~at sp =
  if sp.live && sp.sp_end = None then begin
    sp.sp_end <- Some at;
    if sp.root then
      if sp.sp_keep then retain t sp
      else t.sampled_out <- t.sampled_out + 1
  end

let duration sp =
  match sp.sp_end with Some e -> Some (e -. sp.sp_start) | None -> None

let finished t = List.rev t.roots
let count t = t.total
let sampled_out t = t.sampled_out
let capacity_dropped t = t.total - t.retained

let clear t =
  t.roots <- [];
  t.retained <- 0;
  t.total <- 0;
  t.sampled_out <- 0

let name sp = sp.sp_name
let attrs sp = List.rev sp.sp_attrs
let events sp = List.rev sp.sp_events
let children sp = List.rev sp.sp_children

let json_attrs pairs = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) pairs)

let rec to_json sp =
  let base =
    [ ("name", Json.Str sp.sp_name); ("start", Json.Num sp.sp_start) ]
  in
  let end_ =
    match sp.sp_end with Some e -> [ ("end", Json.Num e) ] | None -> []
  in
  let attrs_f =
    match attrs sp with [] -> [] | a -> [ ("attrs", json_attrs a) ]
  in
  let events_f =
    match events sp with
    | [] -> []
    | evs ->
        [
          ( "events",
            Json.List
              (List.map
                 (fun (at, name, a) ->
                   Json.Obj
                     ([ ("at", Json.Num at); ("name", Json.Str name) ]
                     @ match a with [] -> [] | a -> [ ("attrs", json_attrs a) ]))
                 evs) );
        ]
  in
  let children_f =
    match children sp with
    | [] -> []
    | cs -> [ ("children", Json.List (List.map to_json cs)) ]
  in
  Json.Obj (base @ end_ @ attrs_f @ events_f @ children_f)

let export t =
  Json.Obj
    [
      ("spans", Json.List (List.map to_json (finished t)));
      (* Two loss causes, reported apart: the capacity cap losing spans
         an operator wanted, vs. head sampling dropping them by
         design. *)
      ("dropped", Json.Num (float_of_int (capacity_dropped t)));
      ("sampled_out", Json.Num (float_of_int t.sampled_out));
    ]

type span = {
  live : bool;
  root : bool;
  sp_name : string;
  sp_start : float;
  mutable sp_end : float option;
  mutable sp_attrs : (string * string) list;  (* newest first *)
  mutable sp_events : (float * string * (string * string) list) list;
  mutable sp_children : span list;  (* newest first *)
}

type t = {
  capacity : int;
  mutable on : bool;
  mutable roots : span list;  (* finished, newest first *)
  mutable retained : int;
  mutable total : int;
}

let create ?(capacity = 1024) ?(enabled = true) () =
  if capacity <= 0 then invalid_arg "Obs.Span.create: capacity must be positive";
  { capacity; on = enabled; roots = []; retained = 0; total = 0 }

let enabled t = t.on
let set_enabled t v = t.on <- v

let null =
  {
    live = false;
    root = false;
    sp_name = "";
    sp_start = 0.;
    sp_end = None;
    sp_attrs = [];
    sp_events = [];
    sp_children = [];
  }

let is_live sp = sp.live

let start t ~at ?parent ?(attrs = []) name =
  let parent_dead = match parent with Some p -> not p.live | None -> false in
  if (not t.on) || parent_dead then null
  else begin
    let sp =
      {
        live = true;
        root = parent = None;
        sp_name = name;
        sp_start = at;
        sp_end = None;
        sp_attrs = List.rev attrs;
        sp_events = [];
        sp_children = [];
      }
    in
    (match parent with
    | Some p -> p.sp_children <- sp :: p.sp_children
    | None -> ());
    sp
  end

let event sp ~at ?(attrs = []) name =
  if sp.live then sp.sp_events <- (at, name, attrs) :: sp.sp_events

let set_attr sp k v =
  if sp.live then sp.sp_attrs <- (k, v) :: List.remove_assoc k sp.sp_attrs

(* Roots are retained newest-first with the same lazy trim as
   Audit.record, so finishing stays O(1) amortized. *)
let retain t sp =
  t.total <- t.total + 1;
  t.roots <- sp :: t.roots;
  t.retained <- t.retained + 1;
  if t.retained > t.capacity + (t.capacity / 4) then begin
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    t.roots <- take t.capacity t.roots;
    t.retained <- t.capacity
  end

let finish t ~at sp =
  if sp.live && sp.sp_end = None then begin
    sp.sp_end <- Some at;
    if sp.root then retain t sp
  end

let duration sp =
  match sp.sp_end with Some e -> Some (e -. sp.sp_start) | None -> None

let finished t = List.rev t.roots
let count t = t.total

let clear t =
  t.roots <- [];
  t.retained <- 0;
  t.total <- 0

let name sp = sp.sp_name
let attrs sp = List.rev sp.sp_attrs
let events sp = List.rev sp.sp_events
let children sp = List.rev sp.sp_children

let json_attrs pairs = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) pairs)

let rec to_json sp =
  let base =
    [ ("name", Json.Str sp.sp_name); ("start", Json.Num sp.sp_start) ]
  in
  let end_ =
    match sp.sp_end with Some e -> [ ("end", Json.Num e) ] | None -> []
  in
  let attrs_f =
    match attrs sp with [] -> [] | a -> [ ("attrs", json_attrs a) ]
  in
  let events_f =
    match events sp with
    | [] -> []
    | evs ->
        [
          ( "events",
            Json.List
              (List.map
                 (fun (at, name, a) ->
                   Json.Obj
                     ([ ("at", Json.Num at); ("name", Json.Str name) ]
                     @ match a with [] -> [] | a -> [ ("attrs", json_attrs a) ]))
                 evs) );
        ]
  in
  let children_f =
    match children sp with
    | [] -> []
    | cs -> [ ("children", Json.List (List.map to_json cs)) ]
  in
  Json.Obj (base @ end_ @ attrs_f @ events_f @ children_f)

let export t =
  Json.Obj
    [
      ("spans", Json.List (List.map to_json (finished t)));
      ("dropped", Json.Num (float_of_int (t.total - t.retained)));
    ]

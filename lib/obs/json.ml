type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- emitter --- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf f =
  if Float.is_nan f || Float.abs f = infinity then
    (* JSON has no NaN/Infinity; emit null (exporters never produce
       these, but be total). *)
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else begin
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then Buffer.add_string buf s
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  end

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let pad n = if pretty then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> add_num buf f
    | Str s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            go (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, item) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            escape_string buf k;
            Buffer.add_string buf (if pretty then ": " else ":");
            go (depth + 1) item)
          fields;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* --- parser --- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, found %c" c c')
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some v -> v
    | None -> fail (Printf.sprintf "bad \\u escape %S" h)
  in
  let add_utf8 buf cp =
    (* Encode a code point as UTF-8; surrogates were combined by the
       caller. *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          (match peek () with
          | None -> fail "unterminated escape"
          | Some c -> (
              advance ();
              match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' ->
                  let cp = hex4 () in
                  let cp =
                    if cp >= 0xD800 && cp <= 0xDBFF then
                      (* High surrogate: a low surrogate must follow. *)
                      if
                        !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                      then begin
                        pos := !pos + 2;
                        let lo = hex4 () in
                        if lo >= 0xDC00 && lo <= 0xDFFF then
                          0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                        else fail "invalid low surrogate"
                      end
                      else fail "lone high surrogate"
                    else cp
                  in
                  add_utf8 buf cp
              | c -> fail (Printf.sprintf "bad escape \\%c" c)));
          loop ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> f
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or } in object"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ] in array"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "byte %d: %s" at msg)

(* --- accessors --- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_list = function List items -> items | _ -> []
let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let obj_keys = function Obj fields -> List.map fst fields | _ -> []

type kind =
  | Threshold of { over : float }
  | Rate_of_change of { factor : float; min_rate : float }
  | Burn_rate of { over : float; windows : int }
  | Quantile_skew of { q_hi : float; q_lo : float; min_ratio : float;
                       min_count : int }
  | Imbalance of { min_ratio : float; min_value : float }

type rule = {
  r_name : string;
  r_help : string;
  r_metric : string;
  r_group_by : string list;
  r_label_as : string option;
  r_kind : kind;
}

let rule ~name ~help ~metric ?(group_by = []) ?label_as kind =
  { r_name = name; r_help = help; r_metric = metric; r_group_by = group_by;
    r_label_as = label_as; r_kind = kind }

(* The shipped rule set. Rule names below are scanned by tools/doclint
   against the doc/OBSERVABILITY.md health-rule catalog — keep the
   ~name:"..." literals greppable. *)
let default_rules =
  [
    rule ~name:"packet_in_surge"
      ~help:"packet-in rate from one source host exceeds 500/s"
      ~metric:"identxx_controller_packet_ins_total" ~group_by:[ "src" ]
      ~label_as:"host"
      (Threshold { over = 500. });
    rule ~name:"deny_latency_skew"
      ~help:"flow-setup p95 exceeds 4x p50 (warm/cold gap a prober could measure)"
      ~metric:"identxx_controller_flow_setup_seconds"
      (Quantile_skew { q_hi = 0.95; q_lo = 0.5; min_ratio = 4.; min_count = 8 });
    rule ~name:"breaker_flap"
      ~help:"circuit-breaker trips observed across the last 5 windows"
      ~metric:"identxx_fastpath_breaker_trips_total"
      (Burn_rate { over = 0.5; windows = 5 });
    rule ~name:"shard_queue_imbalance"
      ~help:"hottest shard queue exceeds 4x the coolest (and at least 8 deep)"
      ~metric:"identxx_shard_queue_depth" ~group_by:[ "shard" ]
      (Imbalance { min_ratio = 4.; min_value = 8. });
    rule ~name:"table_eviction_pressure"
      ~help:"flow-table evictions on one switch exceed 16 over 3 windows"
      ~metric:"identxx_switch_evictions_total" ~group_by:[ "dpid" ]
      (Burn_rate { over = 16.; windows = 3 });
    rule ~name:"daemon_query_surge"
      ~help:"ident++ queries to one host exceed 2000/s"
      ~metric:"identxx_daemon_queries_total" ~group_by:[ "host" ]
      (Threshold { over = 2000. });
  ]

type event = {
  e_rule : string;
  e_at : float;
  e_window : int;
  e_labels : (string * string) list;
  e_value : float;
  e_threshold : float;
}

type t = {
  h_rules : rule list;
  h_window : Window.t;
  h_recorder : Recorder.t;
  h_spans : Span.t option;
  h_windows_total : Registry.Counter.t;
  h_events_total : (string, Registry.Counter.t) Hashtbl.t; (* by rule *)
  h_active_g : (string, Registry.Gauge.t) Hashtbl.t; (* by rule *)
  active : (string * (string * string) list, unit) Hashtbl.t;
  mutable fired : event list; (* newest first *)
  mutable on_fire : event -> unit;
}

let create ?(rules = default_rules) ?(recorder = Recorder.null) ?spans
    ~registry window =
  let h_events_total = Hashtbl.create 8 and h_active_g = Hashtbl.create 8 in
  List.iter
    (fun r ->
      Hashtbl.replace h_events_total r.r_name
        (Registry.counter registry ~help:"Health events fired, by rule"
           ~labels:[ ("rule", r.r_name) ]
           "identxx_health_events_total");
      Hashtbl.replace h_active_g r.r_name
        (Registry.gauge registry ~help:"Health rule groups currently firing"
           ~labels:[ ("rule", r.r_name) ]
           "identxx_health_active"))
    rules;
  {
    h_rules = rules;
    h_window = window;
    h_recorder = recorder;
    h_spans = spans;
    h_windows_total =
      Registry.counter registry ~help:"Health windows closed"
        "identxx_health_windows_total";
    h_events_total;
    h_active_g;
    active = Hashtbl.create 16;
    fired = [];
    on_fire = ignore;
  }

let set_on_fire t f = t.on_fire <- f
let rules t = t.h_rules
let windows_closed t = Window.closed t.h_window
let events t = List.rev t.fired

let active t =
  Hashtbl.fold (fun k () acc -> k :: acc) t.active [] |> List.sort compare

(* Burn totals are magnitudes, not rates: a counter burns its delta
   (events over the lookback, e.g. "evictions over 3 windows"), a
   histogram its observation count, a gauge its level. *)
let burn_value = function
  | Window.W_counter { delta; _ } -> float_of_int delta
  | v -> Window.value_of v

(* Sum this group's burn value over up to [n] most recent windows (the
   newest given explicitly: evaluation interleaves with closing). *)
let burn t r group ~newest n =
  let older = List.filter (fun w -> w.Window.w_seq < newest.Window.w_seq)
      (Window.windows t.h_window) in
  let ws = newest :: List.filteri (fun i _ -> i < n - 1) older in
  List.fold_left
    (fun acc w ->
      match List.assoc_opt group (Window.grouped w ~metric:r.r_metric
                                    ~by:r.r_group_by) with
      | Some v -> acc +. burn_value v
      | None -> acc)
    0. ws

let prev_value t r group ~newest =
  let older = List.filter (fun w -> w.Window.w_seq < newest.Window.w_seq)
      (Window.windows t.h_window) in
  match older with
  | prev :: _ ->
      List.assoc_opt group
        (Window.grouped prev ~metric:r.r_metric ~by:r.r_group_by)
      |> Option.map Window.value_of
  | [] -> None

(* Evaluate one rule against a freshly closed window; return the
   (group, observed, threshold) triples that hold. *)
let evaluate t r (w : Window.window) =
  let groups = Window.grouped w ~metric:r.r_metric ~by:r.r_group_by in
  match r.r_kind with
  | Threshold { over } ->
      List.filter_map
        (fun (g, v) ->
          let x = Window.value_of v in
          if x > over then Some (g, x, over) else None)
        groups
  | Rate_of_change { factor; min_rate } ->
      List.filter_map
        (fun (g, v) ->
          let x = Window.value_of v in
          match prev_value t r g ~newest:w with
          | Some p when x > p *. factor && x >= min_rate ->
              Some (g, x, p *. factor)
          | _ -> None)
        groups
  | Burn_rate { over; windows } ->
      List.filter_map
        (fun (g, _) ->
          let x = burn t r g ~newest:w windows in
          if x > over then Some (g, x, over) else None)
        groups
  | Quantile_skew { q_hi; q_lo; min_ratio; min_count } ->
      List.filter_map
        (fun (g, v) ->
          match v with
          | Window.W_histogram { buckets; count; _ } when count >= min_count ->
              let q q' = Registry.estimate_quantile ~buckets ~count q' in
              (match (q q_hi, q q_lo) with
              | Some hi, Some lo when lo > 0. && hi > lo *. min_ratio ->
                  Some (g, hi /. lo, min_ratio)
              | _ -> None)
          | _ -> None)
        groups
  | Imbalance { min_ratio; min_value } -> (
      match groups with
      | [] | [ _ ] -> []
      | _ ->
          let vals = List.map (fun (g, v) -> (g, Window.value_of v)) groups in
          let (gmax, vmax) =
            List.fold_left (fun (g0, v0) (g, v) ->
                if v > v0 then (g, v) else (g0, v0))
              (List.hd vals) (List.tl vals)
          in
          let vmin = List.fold_left (fun m (_, v) -> min m v) vmax vals in
          if vmax >= min_value && vmax > vmin *. min_ratio then
            [ (gmax, vmax, vmin *. min_ratio) ]
          else [])

let relabel r g =
  match (r.r_label_as, g) with
  | Some k, [ (_, v) ] -> [ (k, v) ]
  | _ -> g

let fire t r ~at ~window g value threshold =
  let e =
    { e_rule = r.r_name; e_at = at; e_window = window;
      e_labels = relabel r g; e_value = value; e_threshold = threshold }
  in
  t.fired <- e :: t.fired;
  (match Hashtbl.find_opt t.h_events_total r.r_name with
  | Some c -> Registry.Counter.inc c
  | None -> ());
  (match t.h_spans with
  | Some spans when Span.enabled spans ->
      let sp =
        Span.start spans ~at
          ~attrs:
            (("rule", r.r_name)
            :: ("value", Printf.sprintf "%g" value)
            :: ("threshold", Printf.sprintf "%g" threshold)
            :: e.e_labels)
          "health"
      in
      Span.force_sample sp;
      Span.finish spans ~at sp
  | _ -> ());
  if Recorder.enabled t.h_recorder then
    Recorder.record t.h_recorder ~at
      ~attrs:
        (("rule", r.r_name)
        :: ("value", Printf.sprintf "%g" value)
        :: e.e_labels)
      "health";
  t.on_fire e;
  e

let evaluate_window t (w : Window.window) =
  Registry.Counter.inc t.h_windows_total;
  let out = ref [] in
  List.iter
    (fun r ->
      let holding = evaluate t r w in
      let holding_groups = List.map (fun (g, _, _) -> g) holding in
      (* Edge-trigger: fire on rising edge only; a group re-arms after
         a window in which the condition is false. *)
      List.iter
        (fun (g, v, th) ->
          let key = (r.r_name, g) in
          if not (Hashtbl.mem t.active key) then begin
            Hashtbl.replace t.active key ();
            out := fire t r ~at:w.Window.w_until ~window:w.Window.w_seq g v th
                   :: !out
          end)
        holding;
      Hashtbl.iter
        (fun (rn, g) () ->
          if rn = r.r_name && not (List.mem g holding_groups) then
            Hashtbl.remove t.active (rn, g))
        (Hashtbl.copy t.active);
      match Hashtbl.find_opt t.h_active_g r.r_name with
      | Some gauge ->
          let n =
            Hashtbl.fold
              (fun (rn, _) () acc -> if rn = r.r_name then acc + 1 else acc)
              t.active 0
          in
          Registry.Gauge.set gauge (float_of_int n)
      | None -> ())
    t.h_rules;
  List.rev !out

let step t ~now =
  match Window.tick t.h_window ~now with
  | Some w -> evaluate_window t w
  | None -> []

let force_step t ~now = evaluate_window t (Window.close t.h_window ~now)

let event_to_json e =
  Json.Obj
    [
      ("rule", Json.Str e.e_rule);
      ("at", Json.Num e.e_at);
      ("window", Json.Num (float_of_int e.e_window));
      ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) e.e_labels));
      ("value", Json.Num e.e_value);
      ("threshold", Json.Num e.e_threshold);
    ]

let kind_to_string = function
  | Threshold { over } -> Printf.sprintf "threshold(value > %g)" over
  | Rate_of_change { factor; min_rate } ->
      Printf.sprintf "rate-of-change(value > %gx prev, min %g)" factor min_rate
  | Burn_rate { over; windows } ->
      Printf.sprintf "burn-rate(sum over %d windows > %g)" windows over
  | Quantile_skew { q_hi; q_lo; min_ratio; min_count } ->
      Printf.sprintf "quantile-skew(p%g > %gx p%g, min %d obs)" (q_hi *. 100.)
        min_ratio (q_lo *. 100.) min_count
  | Imbalance { min_ratio; min_value } ->
      Printf.sprintf "imbalance(max > %gx min, min %g)" min_ratio min_value

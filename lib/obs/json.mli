(** A minimal JSON value type with an emitter and a parser.

    The observability exporters ({!Export}) emit JSON snapshots, the
    span collector ({!Span}) emits JSON event streams, and the
    [identxx_ctl metrics] command reads them back — so the repository
    needs one JSON implementation that round-trips its own output.
    This is that implementation: no external dependencies, UTF-8
    pass-through, deterministic field order (whatever the caller
    built). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** [pretty] (default [false]) adds newlines and two-space indentation.
    Numbers that are exact integers of magnitude below [1e15] print
    without a decimal point; other numbers print with enough digits to
    round-trip. *)

val of_string : string -> (t, string) result
(** Strict parser for the JSON this module emits (and standard JSON
    generally): objects, arrays, strings with the standard escapes
    (including [\uXXXX], decoded to UTF-8), numbers, [true], [false],
    [null]. Errors carry a byte offset. *)

(** {2 Accessors}

    All return [None] (or the empty list) on a type mismatch, so schema
    walks read naturally. *)

val member : string -> t -> t option
(** First binding of the key in an object. *)

val to_list : t -> t list
val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_bool : t -> bool option

val obj_keys : t -> string list

(** Online statistics for simulation measurements. *)

type t
(** A sample accumulator: keeps count/mean/variance online and the full
    sample set for exact percentiles. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float
val stddev : t -> float
val min_value : t -> float
val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t 99.0] is the exact p99 (nearest-rank on the sorted
    sample). The sorted sample is cached between calls: a query sorts
    only the values added since the previous query and merges them in,
    so interleaving {!add} and [percentile] (live dashboards, per-batch
    reporting) stays near-linear instead of re-sorting the full sample
    each time. @raise Invalid_argument when empty or p outside
    [0,100]. *)

val median : t -> float

val summary : t -> string
(** One-line "n=.. mean=.. p50=.. p99=.. max=..". *)

type histogram
(** Fixed-width bucket counts for distribution plots. *)

val histogram : ?buckets:int -> t -> histogram
val buckets : histogram -> (float * float * int) list
(** (lo, hi, count) triples. *)

val pp_histogram : Format.formatter -> histogram -> unit

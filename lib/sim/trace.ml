type entry = { at : Time.t; actor : string; event : string }
type t = { mutable entries : entry list; mutable enabled : bool }

let create () = { entries = []; enabled = true }
let enabled t = t.enabled
let set_enabled t v = t.enabled <- v

let record t ~at ~actor event =
  if t.enabled then t.entries <- { at; actor; event } :: t.entries

let entries t = List.rev t.entries
let find t ~f = List.find_opt f (entries t)
let count t ~f = List.length (List.filter f (entries t))
let clear t = t.entries <- []

let pp_entry ppf e =
  Format.fprintf ppf "%8s  %-12s %s"
    (Format.asprintf "%a" Time.pp e.at)
    e.actor e.event

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)

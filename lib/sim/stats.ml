type t = {
  mutable values : float array; (* insertion order, append-only *)
  mutable len : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable sorted : float array;
      (* A sorted copy of values[0..sorted_len): percentile queries sort
         only the suffix added since the last query and merge it in, so
         interleaved add/percentile costs O(new log new + n) per query
         instead of re-sorting the whole sample every time. *)
  mutable sorted_len : int;
}

let create () =
  {
    values = [||];
    len = 0;
    mean = 0.0;
    m2 = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
    sorted = [||];
    sorted_len = 0;
  }

let add t x =
  if t.len = Array.length t.values then begin
    let ncap = if t.len = 0 then 64 else t.len * 2 in
    let nv = Array.make ncap 0.0 in
    Array.blit t.values 0 nv 0 t.len;
    t.values <- nv
  end;
  t.values.(t.len) <- x;
  t.len <- t.len + 1;
  (* Welford's online update. *)
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.len);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.len
let mean t = if t.len = 0 then 0.0 else t.mean
let variance t = if t.len < 2 then 0.0 else t.m2 /. float_of_int (t.len - 1)
let stddev t = sqrt (variance t)
let min_value t = t.min_v
let max_value t = t.max_v

let ensure_sorted t =
  if t.sorted_len < t.len then begin
    let fresh = Array.sub t.values t.sorted_len (t.len - t.sorted_len) in
    Array.sort Float.compare fresh;
    let nfresh = Array.length fresh in
    let merged = Array.make t.len 0.0 in
    let i = ref 0 and j = ref 0 in
    for k = 0 to t.len - 1 do
      if
        !i < t.sorted_len
        && (!j >= nfresh || Float.compare t.sorted.(!i) fresh.(!j) <= 0)
      then begin
        merged.(k) <- t.sorted.(!i);
        incr i
      end
      else begin
        merged.(k) <- fresh.(!j);
        incr j
      end
    done;
    t.sorted <- merged;
    t.sorted_len <- t.len
  end

let percentile t p =
  if t.len = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: bad percentile";
  ensure_sorted t;
  let rank =
    int_of_float (ceil (p /. 100.0 *. float_of_int t.len)) - 1
  in
  t.sorted.(Stdlib.max 0 (Stdlib.min (t.len - 1) rank))

let median t = percentile t 50.0

let summary t =
  if t.len = 0 then "n=0"
  else
    Printf.sprintf "n=%d mean=%.3g p50=%.3g p99=%.3g min=%.3g max=%.3g" t.len
      (mean t) (median t) (percentile t 99.0) t.min_v t.max_v

type histogram = { lo : float; width : float; counts : int array }

let histogram ?(buckets = 10) t =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets must be positive";
  if t.len = 0 then { lo = 0.0; width = 1.0; counts = Array.make buckets 0 }
  else begin
    let lo = t.min_v and hi = t.max_v in
    let width =
      if hi > lo then (hi -. lo) /. float_of_int buckets else 1.0
    in
    let counts = Array.make buckets 0 in
    for i = 0 to t.len - 1 do
      let b =
        int_of_float ((t.values.(i) -. lo) /. width)
      in
      let b = Stdlib.max 0 (Stdlib.min (buckets - 1) b) in
      counts.(b) <- counts.(b) + 1
    done;
    { lo; width; counts }
  end

let buckets h =
  Array.to_list
    (Array.mapi
       (fun i c ->
         let lo = h.lo +. (float_of_int i *. h.width) in
         (lo, lo +. h.width, c))
       h.counts)

let pp_histogram ppf h =
  let total =
    Stdlib.max 1 (Array.fold_left ( + ) 0 h.counts)
  in
  List.iter
    (fun (lo, hi, c) ->
      let bar = String.make (c * 40 / total) '#' in
      Format.fprintf ppf "[%10.3g, %10.3g) %6d %s@." lo hi c bar)
    (buckets h)

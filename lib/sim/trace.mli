(** A simulation trace: timestamped, categorised event records, used by
    the netsim binary to print Figure-1-style sequences and by tests to
    assert on event ordering. *)

type entry = { at : Time.t; actor : string; event : string }
type t

val create : unit -> t
val record : t -> at:Time.t -> actor:string -> string -> unit
(** No-op while recording is disabled. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit
(** Tracing is on by default. Callers on hot paths should check
    {!enabled} before formatting an event string, so a disabled trace
    costs nothing (benchmarks turn it off). *)

val entries : t -> entry list
(** In recording order. *)

val find : t -> f:(entry -> bool) -> entry option
val count : t -> f:(entry -> bool) -> int
val clear : t -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit

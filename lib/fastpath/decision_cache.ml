open Netcore

type entry = {
  verdict : Pf.Eval.verdict;
  src : Ipv4.t;
  dst : Ipv4.t;
}

type t = {
  capacity : int;
  entries : (string, entry) Hashtbl.t;
  order : string Queue.t; (* insertion order, for FIFO eviction *)
  mutable epoch : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 16384) () =
  if capacity < 1 then
    invalid_arg "Decision_cache.create: capacity must be >= 1";
  {
    capacity;
    entries = Hashtbl.create 256;
    order = Queue.create ();
    epoch = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let clear t =
  Hashtbl.reset t.entries;
  Queue.clear t.order

(* A changed policy epoch orphans every cached verdict at once. *)
let sync_epoch t epoch =
  if epoch <> t.epoch then begin
    clear t;
    t.epoch <- epoch
  end

let find t ~epoch ~key =
  sync_epoch t epoch;
  match Hashtbl.find_opt t.entries key with
  | Some e ->
      t.hits <- t.hits + 1;
      Some e.verdict
  | None ->
      t.misses <- t.misses + 1;
      None

let evict_one t =
  match Queue.take_opt t.order with
  | None -> ()
  | Some key ->
      if Hashtbl.mem t.entries key then begin
        Hashtbl.remove t.entries key;
        t.evictions <- t.evictions + 1
      end

let store t ~epoch ~key ~flow verdict =
  sync_epoch t epoch;
  if not (Hashtbl.mem t.entries key) then begin
    while Hashtbl.length t.entries >= t.capacity do
      evict_one t
    done;
    Queue.add key t.order
  end;
  Hashtbl.replace t.entries key
    { verdict; src = flow.Five_tuple.src; dst = flow.Five_tuple.dst }

let purge_ip t ip =
  let doomed =
    Hashtbl.fold
      (fun k e acc ->
        if Ipv4.equal e.src ip || Ipv4.equal e.dst ip then k :: acc else acc)
      t.entries []
  in
  List.iter (Hashtbl.remove t.entries) doomed;
  List.length doomed

let size t = Hashtbl.length t.entries
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

(** Flow-setup fast path: the three caches the controller consults
    before (or instead of) the Figure-1 query exchange.

    - {!Attr_cache}: recent daemon responses, keyed by (host, query-key
      set, signer), dropped on daemon-side change events and TTL expiry;
    - {!Decision_cache}: memoized verdicts keyed by (policy epoch, flow
      class, canonical answer set) — a {!Policy_store} epoch bump
      orphans every entry;
    - {!Breaker}: a per-host circuit breaker that, after [threshold]
      consecutive query timeouts, treats the host as non-ident++ for a
      backoff window and lets flows decide immediately with absent
      responses (§4's incremental-deployment fallback).

    See DESIGN.md, "Flow-setup fast path", for invalidation rules and
    the soundness argument. *)

open Netcore

module Attr_cache = Attr_cache
module Decision_cache = Decision_cache
module Breaker = Breaker

type config = {
  enabled : bool;
  attr_capacity : int;  (** Attribute-cache entries (FIFO-evicted). *)
  attr_ttl : Sim.Time.t;  (** Attribute-cache entry lifetime. *)
  decision_capacity : int;  (** Decision-cache entries (FIFO-evicted). *)
  breaker_threshold : int;
      (** Consecutive timeouts before a host's breaker trips. *)
  breaker_backoff : Sim.Time.t;
      (** How long a tripped breaker stays open before a re-probe. *)
}

val default_config : config
(** Enabled; 4096 attribute entries with a 5 s TTL, 16384 decisions,
    breaker trips after 3 timeouts for 30 s. *)

val disabled : config
(** [default_config] with [enabled = false] — the controller default,
    so the baseline Figure-1 exchange is unchanged unless asked for. *)

type t

val create : config -> t
val config : t -> config
val enabled : t -> bool

val attr_cache : t -> Attr_cache.t
val decision_cache : t -> Decision_cache.t
val breaker : t -> Breaker.t
(** Direct access to the underlying caches, for tests and tooling. *)

(** {2 Attribute cache} *)

val find_attrs :
  t -> now:Sim.Time.t -> host:Ipv4.t -> keys:string list ->
  Identxx.Response.t option
(** [None] (without touching counters) when the fast path is off. *)

val find_attrs_tagged :
  t -> now:Sim.Time.t -> host:Ipv4.t -> keys:string list ->
  (Identxx.Response.t * string) option
(** Like {!find_attrs}, also returning the cached decision-key answer
    tag so per-flow cache hits skip re-encoding the response. *)

val store_attrs :
  t ->
  now:Sim.Time.t ->
  host:Ipv4.t ->
  keys:string list ->
  ?signer:string ->
  Identxx.Response.t ->
  unit

(** {2 Circuit breaker} *)

val consult_host :
  t -> now:Sim.Time.t -> Ipv4.t -> [ `Ask | `Absent | `Probe ]
(** [`Ask] always when the fast path is off. *)

val note_timeout : t -> now:Sim.Time.t -> Ipv4.t -> unit

val note_timeout_report : t -> now:Sim.Time.t -> Ipv4.t -> bool
(** Like {!note_timeout}, but reports whether this timeout tripped the
    host's breaker (so the controller can mark the flow's trace).
    Always [false] when the fast path is off. *)

val note_breaker_open : t -> now:Sim.Time.t -> Ipv4.t -> unit
(** Adopt a breaker trip observed by another shard's view (see
    {!Breaker.force_open}): the host goes straight to open here too, so
    every shard fails its flows fast. A no-op when the fast path is
    off. *)

val note_response : t -> Ipv4.t -> unit

(** {2 Decision cache} *)

val env_matches_src_port : Pf.Env.t -> bool
(** Whether any rule constrains the flow {e source} port. When none
    does, the source port can be wildcarded out of the decision key, so
    every ephemeral client port of the same (src, dst, proto, dst port)
    class shares one cached verdict. *)

val answer_tag : Identxx.Response.t option -> string
(** The canonical encoding of one endpoint's answer as it enters the
    decision key: ["-"] for an absent response (silent host), ["R" ^
    encoding] otherwise — so an empty answer set is distinguished from
    no answer at all. *)

val decision_key_tagged :
  match_src_port:bool ->
  flow:Five_tuple.t ->
  src_tag:string ->
  dst_tag:string ->
  string
(** Canonical cache key from pre-computed {!answer_tag}s: the
    flow-class fields plus both (length-prefixed) endpoint answer tags.
    The hot path uses this with tags cached by {!Attr_cache}. *)

val decision_key :
  match_src_port:bool ->
  flow:Five_tuple.t ->
  src:Identxx.Response.t option ->
  dst:Identxx.Response.t option ->
  string
(** [decision_key_tagged] with freshly computed tags. *)

val find_decision : t -> epoch:int -> key:string -> Pf.Eval.verdict option
(** [None] (without touching counters) when the fast path is off. *)

val store_decision :
  t -> epoch:int -> key:string -> flow:Five_tuple.t -> Pf.Eval.verdict -> unit

(** {2 Invalidation} *)

val note_host_changed : t -> Ipv4.t -> unit
(** A daemon-side change event (login/logout, process spawn/exit,
    configuration reload): drop the host's cached attributes and every
    cached decision its answers may have influenced. *)

val revoke_ip : t -> Ipv4.t -> unit
(** Principal revocation: like {!note_host_changed}, also closing the
    host's breaker state so a now-suspect silent host is re-probed. *)

val flush_decisions : t -> unit
(** Drop every memoized verdict (a policy override): cached attributes
    and breaker state survive, since policy operations do not change
    what hosts answer. *)

val flush : t -> unit
(** Drop everything (attribute cache, decision cache, breaker state). *)

(** {2 Observability} *)

val register_metrics :
  t -> ?labels:(string * string) list -> Obs.Registry.t -> unit
(** Register the fast path's series with a metrics registry as callback
    series: the caches keep their own counters and the registry samples
    them at snapshot time, so nothing is added to the per-flow path.
    [labels] (e.g. [("controller", "0")]) are prepended to every
    series. The full catalog is in doc/OBSERVABILITY.md under
    [identxx_fastpath_*]. *)

(** {2 Counters} *)

type counters = {
  attr_hits : int;
  attr_misses : int;
  attr_evictions : int;
  attr_invalidations : int;
  decision_hits : int;
  decision_misses : int;
  decision_evictions : int;
  breaker_trips : int;
  breaker_fastpaths : int;  (** Flows decided with a breaker-open absent. *)
}

val counters : t -> counters
val pp_counters : Format.formatter -> counters -> unit

open Netcore

let expires_key = "expires"

type entry = {
  response : Identxx.Response.t;
  tag : string;
      (* the response's decision-key answer tag ("R" ^ encoding),
         computed once here so cache hits never re-encode *)
  signer : string option;
  expires_at : Sim.Time.t;
}

(* Key: host address + the sorted query-key set. *)
module Key = struct
  type t = int * string

  let make host keys =
    (Ipv4.to_int host, String.concat "," (List.sort_uniq String.compare keys))

  let equal (a : t) (b : t) = a = b
  let hash = Hashtbl.hash
end

module Tbl = Hashtbl.Make (Key)

type t = {
  capacity : int;
  ttl : Sim.Time.t;
  entries : entry Tbl.t;
  order : Key.t Queue.t; (* insertion order, for FIFO eviction *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

let create ?(capacity = 4096) ~ttl () =
  if capacity < 1 then invalid_arg "Attr_cache.create: capacity must be >= 1";
  {
    capacity;
    ttl;
    entries = Tbl.create 256;
    order = Queue.create ();
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

(* The response's own lifetime bound, when it carries one. *)
let self_expiry response =
  match Identxx.Response.latest response expires_key with
  | None -> None
  | Some v -> (
      match float_of_string_opt (String.trim v) with
      | Some s when s >= 0.0 -> Some (Sim.Time.of_float_s s)
      | Some _ | None -> None)

let evict_one t =
  match Queue.take_opt t.order with
  | None -> ()
  | Some key ->
      if Tbl.mem t.entries key then begin
        Tbl.remove t.entries key;
        t.evictions <- t.evictions + 1
      end

let store t ~now ~host ~keys ?signer response =
  let key = Key.make host keys in
  let ttl =
    match self_expiry response with
    | Some bound -> Sim.Time.min t.ttl bound
    | None -> t.ttl
  in
  let entry =
    {
      response;
      tag = "R" ^ Identxx.Response.encode response;
      signer;
      expires_at = Sim.Time.add now ttl;
    }
  in
  if not (Tbl.mem t.entries key) then begin
    (* The queue may hold keys of already-replaced or invalidated
       entries; evict until a live entry actually goes. *)
    while Tbl.length t.entries >= t.capacity do
      evict_one t
    done;
    Queue.add key t.order
  end;
  Tbl.replace t.entries key entry

let find_tagged t ~now ~host ~keys =
  let key = Key.make host keys in
  match Tbl.find_opt t.entries key with
  | Some e when Sim.Time.(now < e.expires_at) ->
      t.hits <- t.hits + 1;
      Some (e.response, e.tag)
  | Some _ ->
      Tbl.remove t.entries key;
      t.misses <- t.misses + 1;
      None
  | None ->
      t.misses <- t.misses + 1;
      None

let find t ~now ~host ~keys = Option.map fst (find_tagged t ~now ~host ~keys)

let drop_matching t pred =
  let stale =
    Tbl.fold (fun k e acc -> if pred k e then k :: acc else acc) t.entries []
  in
  List.iter (Tbl.remove t.entries) stale;
  let n = List.length stale in
  t.invalidations <- t.invalidations + n;
  n

let invalidate_host t host =
  let addr = Ipv4.to_int host in
  drop_matching t (fun (a, _) _ -> a = addr)

let invalidate_signer t signer =
  drop_matching t (fun _ e -> e.signer = Some signer)

let size t = Tbl.length t.entries

let clear t =
  Tbl.reset t.entries;
  Queue.clear t.order

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let invalidations t = t.invalidations

(** Per-host circuit breaker for silent (non-ident++) end-hosts.

    §4 of the paper expects unmodified hosts: their daemons never
    answer, and policy must decide with absent responses. Without help
    the controller burns the full query timeout (plus retries) on
    {e every} flow from such a host. The breaker notices the pattern —
    [threshold] consecutive timeouts — and then treats the host as
    non-ident++ for a [backoff] window: flows decide immediately with an
    absent response, exactly the fallback the paper prescribes. When the
    window expires the next flow probes the host again (the daemon may
    have been installed, rebooted, or un-firewalled in the meantime); a
    response closes the breaker, another timeout re-opens it. *)

open Netcore

type t

val create : ?threshold:int -> ?backoff:Sim.Time.t -> unit -> t
(** Default: 3 consecutive timeouts trip the breaker for 30 simulated
    seconds. *)

val consult : t -> now:Sim.Time.t -> Ipv4.t -> [ `Ask | `Absent | `Probe ]
(** What to do about a query for [host]:
    - [`Ask]: no evidence of silence — query normally.
    - [`Absent]: breaker open — decide now with an absent response.
    - [`Probe]: the backoff window expired — send one probe query
      (until it resolves, other flows keep getting [`Absent]). *)

val note_timeout : t -> now:Sim.Time.t -> Ipv4.t -> unit
(** The host failed to answer within the query timeout (after any
    retries). Trips the breaker at [threshold] consecutive timeouts;
    a failed probe re-opens immediately. *)

val force_open : t -> now:Sim.Time.t -> Ipv4.t -> unit
(** Adopt a trip observed elsewhere (another controller shard saw the
    host silent): jump straight to open for the backoff window, without
    counting a trip of our own. A no-op when already open. *)

val note_response : t -> Ipv4.t -> unit
(** The host answered: close the breaker and forget its history. *)

type state = Closed | Open_until of Sim.Time.t | Probing

val state : t -> Ipv4.t -> state

val trips : t -> int
(** Closed-to-open transitions (including probe failures). *)

val fastpaths : t -> int
(** [`Absent] verdicts served. *)

val tracked : t -> int
val clear : t -> unit

open Netcore

type state = Closed | Open_until of Sim.Time.t | Probing

type host_state = {
  mutable consecutive : int;
  mutable st : state;
}

module Tbl = Hashtbl.Make (struct
  type t = Ipv4.t

  let equal = Ipv4.equal
  let hash = Ipv4.hash
end)

type t = {
  threshold : int;
  backoff : Sim.Time.t;
  hosts : host_state Tbl.t;
  mutable trips : int;
  mutable fastpaths : int;
}

let create ?(threshold = 3) ?(backoff = Sim.Time.s 30) () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
  { threshold; backoff; hosts = Tbl.create 64; trips = 0; fastpaths = 0 }

let host t ip =
  match Tbl.find_opt t.hosts ip with
  | Some h -> h
  | None ->
      let h = { consecutive = 0; st = Closed } in
      Tbl.replace t.hosts ip h;
      h

let consult t ~now ip =
  match Tbl.find_opt t.hosts ip with
  | None -> `Ask
  | Some h -> (
      match h.st with
      | Closed -> `Ask
      | Probing ->
          t.fastpaths <- t.fastpaths + 1;
          `Absent
      | Open_until until ->
          if Sim.Time.(now < until) then begin
            t.fastpaths <- t.fastpaths + 1;
            `Absent
          end
          else begin
            h.st <- Probing;
            `Probe
          end)

let note_timeout t ~now ip =
  let h = host t ip in
  match h.st with
  | Probing ->
      (* The probe failed: straight back to open. *)
      h.st <- Open_until (Sim.Time.add now t.backoff);
      t.trips <- t.trips + 1
  | Open_until _ -> ()
  | Closed ->
      h.consecutive <- h.consecutive + 1;
      if h.consecutive >= t.threshold then begin
        h.st <- Open_until (Sim.Time.add now t.backoff);
        t.trips <- t.trips + 1
      end

(* Adopt a trip observed elsewhere (another controller shard): jump the
   host straight to open, without counting a trip of our own — the
   shard that saw the silence already did. *)
let force_open t ~now ip =
  let h = host t ip in
  match h.st with
  | Open_until _ -> ()
  | Closed | Probing -> h.st <- Open_until (Sim.Time.add now t.backoff)

let note_response t ip = Tbl.remove t.hosts ip

let state t ip =
  match Tbl.find_opt t.hosts ip with None -> Closed | Some h -> h.st

let trips t = t.trips
let fastpaths t = t.fastpaths
let tracked t = Tbl.length t.hosts
let clear t = Tbl.reset t.hosts

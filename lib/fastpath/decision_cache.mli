(** Memoized policy verdicts, keyed by (policy epoch, flow class,
    canonical answer set).

    Two flows whose classifier fields and end-host answers are identical
    receive the identical verdict from {!Pf.Eval}, so the controller can
    replay a cached verdict instead of re-walking the ruleset — but only
    within a single policy {e epoch}: {!Policy_store} bumps a monotonic
    counter on every load, remove and rollback, and entries from any
    other epoch are unreachable (and dropped wholesale on the first
    access in the new epoch), so a stale decision can never survive a
    policy change.

    The cache also remembers which hosts each entry's flow touched, so
    revoking a principal ({!purge_ip}) removes every decision that could
    have been influenced by it. *)

open Netcore

type t

val create : ?capacity:int -> unit -> t
(** FIFO-bounded (default 16384 entries). *)

val find : t -> epoch:int -> key:string -> Pf.Eval.verdict option
(** Counts a hit or a miss. An [epoch] different from the cache's
    current one first clears the cache. *)

val store :
  t -> epoch:int -> key:string -> flow:Five_tuple.t -> Pf.Eval.verdict -> unit

val purge_ip : t -> Ipv4.t -> int
(** Drop every entry whose flow involved the address; returns the
    number dropped. *)

val size : t -> int
val clear : t -> unit

(** {2 Counters} *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int
(** Capacity evictions; epoch flushes and purges are not counted. *)

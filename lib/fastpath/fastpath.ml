open Netcore
module Attr_cache = Attr_cache
module Decision_cache = Decision_cache
module Breaker = Breaker

type config = {
  enabled : bool;
  attr_capacity : int;
  attr_ttl : Sim.Time.t;
  decision_capacity : int;
  breaker_threshold : int;
  breaker_backoff : Sim.Time.t;
}

let default_config =
  {
    enabled = true;
    attr_capacity = 4096;
    attr_ttl = Sim.Time.s 5;
    decision_capacity = 16384;
    breaker_threshold = 3;
    breaker_backoff = Sim.Time.s 30;
  }

let disabled = { default_config with enabled = false }

type t = {
  cfg : config;
  attrs : Attr_cache.t;
  decisions : Decision_cache.t;
  breaker : Breaker.t;
}

let create cfg =
  {
    cfg;
    attrs = Attr_cache.create ~capacity:cfg.attr_capacity ~ttl:cfg.attr_ttl ();
    decisions = Decision_cache.create ~capacity:cfg.decision_capacity ();
    breaker =
      Breaker.create ~threshold:cfg.breaker_threshold
        ~backoff:cfg.breaker_backoff ();
  }

let config t = t.cfg
let enabled t = t.cfg.enabled
let attr_cache t = t.attrs
let decision_cache t = t.decisions
let breaker t = t.breaker

let find_attrs t ~now ~host ~keys =
  if not t.cfg.enabled then None
  else Attr_cache.find t.attrs ~now ~host ~keys

let find_attrs_tagged t ~now ~host ~keys =
  if not t.cfg.enabled then None
  else Attr_cache.find_tagged t.attrs ~now ~host ~keys

let store_attrs t ~now ~host ~keys ?signer response =
  if t.cfg.enabled then
    Attr_cache.store t.attrs ~now ~host ~keys ?signer response

let consult_host t ~now ip =
  if not t.cfg.enabled then `Ask else Breaker.consult t.breaker ~now ip

let note_timeout_report t ~now ip =
  if not t.cfg.enabled then false
  else begin
    let before = Breaker.trips t.breaker in
    Breaker.note_timeout t.breaker ~now ip;
    Breaker.trips t.breaker > before
  end

let note_timeout t ~now ip = ignore (note_timeout_report t ~now ip)

let note_breaker_open t ~now ip =
  if t.cfg.enabled then Breaker.force_open t.breaker ~now ip

let note_response t ip =
  if t.cfg.enabled then Breaker.note_response t.breaker ip

let env_matches_src_port env =
  List.exists
    (fun (r : Pf.Ast.rule) -> r.from_.port <> None)
    (Pf.Env.rules env)

(* The "R" tag keeps "daemon answered with no pairs" distinct from
   "daemon silent" — policy treats them differently. *)
let answer_tag = function
  | None -> "-"
  | Some r -> "R" ^ Identxx.Response.encode r

let decision_key_tagged ~match_src_port ~(flow : Five_tuple.t) ~src_tag
    ~dst_tag =
  (* Length prefixes keep the concatenated tags unambiguous (a tag may
     contain any byte, including the separators). *)
  Printf.sprintf "%s>%s/%s:%s:%d:%d,%s%s"
    (Ipv4.to_string flow.Five_tuple.src)
    (Ipv4.to_string flow.Five_tuple.dst)
    (Proto.to_string flow.Five_tuple.proto)
    (if match_src_port then string_of_int flow.Five_tuple.src_port else "*")
    flow.Five_tuple.dst_port (String.length src_tag) src_tag dst_tag

let decision_key ~match_src_port ~flow ~src ~dst =
  decision_key_tagged ~match_src_port ~flow ~src_tag:(answer_tag src)
    ~dst_tag:(answer_tag dst)

let find_decision t ~epoch ~key =
  if not t.cfg.enabled then None
  else Decision_cache.find t.decisions ~epoch ~key

let store_decision t ~epoch ~key ~flow verdict =
  if t.cfg.enabled then
    Decision_cache.store t.decisions ~epoch ~key ~flow verdict

let note_host_changed t ip =
  if t.cfg.enabled then begin
    ignore (Attr_cache.invalidate_host t.attrs ip : int);
    ignore (Decision_cache.purge_ip t.decisions ip : int)
  end

let revoke_ip t ip =
  note_host_changed t ip;
  if t.cfg.enabled then Breaker.note_response t.breaker ip

let flush_decisions t = Decision_cache.clear t.decisions

let flush t =
  Attr_cache.clear t.attrs;
  Decision_cache.clear t.decisions;
  Breaker.clear t.breaker

(* The caches keep their own plain-int counters on the hot path; the
   registry reads them through callbacks at snapshot time, so metrics
   add zero per-operation cost here. *)
let register_metrics t ?(labels = []) reg =
  let cache_events name help instance events =
    List.iter
      (fun (event, read) ->
        Obs.Registry.counter_fn reg ~help
          ~labels:(labels @ [ ("cache", instance); ("event", event) ])
          name read)
      events
  in
  cache_events "identxx_fastpath_cache_events_total"
    "Attribute/decision cache hits, misses, evictions and invalidations."
    "attr"
    [
      ("hit", fun () -> Attr_cache.hits t.attrs);
      ("miss", fun () -> Attr_cache.misses t.attrs);
      ("eviction", fun () -> Attr_cache.evictions t.attrs);
      ("invalidation", fun () -> Attr_cache.invalidations t.attrs);
    ];
  cache_events "identxx_fastpath_cache_events_total"
    "Attribute/decision cache hits, misses, evictions and invalidations."
    "decision"
    [
      ("hit", fun () -> Decision_cache.hits t.decisions);
      ("miss", fun () -> Decision_cache.misses t.decisions);
      ("eviction", fun () -> Decision_cache.evictions t.decisions);
    ];
  Obs.Registry.gauge_fn reg
    ~help:"Entries currently held by the cache."
    ~labels:(labels @ [ ("cache", "attr") ])
    "identxx_fastpath_cache_size"
    (fun () -> float_of_int (Attr_cache.size t.attrs));
  Obs.Registry.gauge_fn reg
    ~help:"Entries currently held by the cache."
    ~labels:(labels @ [ ("cache", "decision") ])
    "identxx_fastpath_cache_size"
    (fun () -> float_of_int (Decision_cache.size t.decisions));
  Obs.Registry.counter_fn reg
    ~help:"Closed-to-open breaker transitions (including failed probes)."
    ~labels "identxx_fastpath_breaker_trips_total"
    (fun () -> Breaker.trips t.breaker);
  Obs.Registry.counter_fn reg
    ~help:"Flows decided immediately with an absent response because the \
           host's breaker was open."
    ~labels "identxx_fastpath_breaker_fastpaths_total"
    (fun () -> Breaker.fastpaths t.breaker);
  Obs.Registry.gauge_fn reg
    ~help:"Hosts with live breaker state (tripped or under observation)."
    ~labels "identxx_fastpath_breaker_tracked_hosts"
    (fun () -> float_of_int (Breaker.tracked t.breaker));
  Obs.Registry.gauge_fn reg
    ~help:"1 when the flow-setup fast path is enabled, 0 otherwise."
    ~labels "identxx_fastpath_enabled"
    (fun () -> if t.cfg.enabled then 1. else 0.)

type counters = {
  attr_hits : int;
  attr_misses : int;
  attr_evictions : int;
  attr_invalidations : int;
  decision_hits : int;
  decision_misses : int;
  decision_evictions : int;
  breaker_trips : int;
  breaker_fastpaths : int;
}

let counters t =
  {
    attr_hits = Attr_cache.hits t.attrs;
    attr_misses = Attr_cache.misses t.attrs;
    attr_evictions = Attr_cache.evictions t.attrs;
    attr_invalidations = Attr_cache.invalidations t.attrs;
    decision_hits = Decision_cache.hits t.decisions;
    decision_misses = Decision_cache.misses t.decisions;
    decision_evictions = Decision_cache.evictions t.decisions;
    breaker_trips = Breaker.trips t.breaker;
    breaker_fastpaths = Breaker.fastpaths t.breaker;
  }

let pp_counters ppf c =
  Format.fprintf ppf
    "attr %d/%d (evict %d, inval %d) decision %d/%d (evict %d) breaker \
     trips %d fastpaths %d"
    c.attr_hits c.attr_misses c.attr_evictions c.attr_invalidations
    c.decision_hits c.decision_misses c.decision_evictions c.breaker_trips
    c.breaker_fastpaths

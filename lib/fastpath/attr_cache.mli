(** TTL'd cache of daemon responses, keyed by (host, query-key set,
    signer).

    The Figure-1 exchange asks both end-hosts the same questions for
    every table-miss flow. Host attributes (who is logged in, which
    applications run, the administrator's host-wide pairs) change far
    more slowly than flows arrive, so the controller may reuse a recent
    answer instead of re-querying — provided the entry is dropped the
    moment the daemon reports a change (login/logout, process exit; see
    {!Identxx.Daemon.on_change}) and never outlives its TTL.

    A response can bound its own reuse: a [expires] key whose value
    parses as a number of seconds caps the entry's lifetime below the
    configured TTL (the signed-section analogue of a certificate
    lifetime — a signer unwilling to vouch for stale attributes sets it
    small). *)

open Netcore

type t

val create : ?capacity:int -> ttl:Sim.Time.t -> unit -> t
(** [capacity] bounds the entry count (FIFO eviction, default 4096). *)

val expires_key : string
(** ["expires"] — the response key read for the self-imposed lifetime
    bound, in (possibly fractional) seconds. *)

val store :
  t ->
  now:Sim.Time.t ->
  host:Ipv4.t ->
  keys:string list ->
  ?signer:string ->
  Identxx.Response.t ->
  unit
(** Cache [response] as the answer [host] gives to a query hinting
    [keys] (order-insensitive). [signer] is the response's
    authenticating principal, if any; a later {!invalidate_signer} with
    the same handle drops the entry. *)

val find :
  t -> now:Sim.Time.t -> host:Ipv4.t -> keys:string list ->
  Identxx.Response.t option
(** A live entry for this host and key set, regardless of signer.
    Expired entries are dropped on the way. Counts a hit or a miss. *)

val find_tagged :
  t -> now:Sim.Time.t -> host:Ipv4.t -> keys:string list ->
  (Identxx.Response.t * string) option
(** Like {!find}, also returning the response's decision-key answer tag
    (computed once at {!store} time, so the per-flow fast path never
    re-encodes the response). *)

val invalidate_host : t -> Ipv4.t -> int
(** Drop every entry for the host (a daemon-side change event); returns
    the number dropped. *)

val invalidate_signer : t -> string -> int
(** Drop every entry authenticated by the signer (key revocation). *)

val size : t -> int
val clear : t -> unit

(** {2 Counters} *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int
(** Capacity evictions only (not TTL expiries). *)

val invalidations : t -> int
(** Entries dropped by {!invalidate_host}/{!invalidate_signer}. *)

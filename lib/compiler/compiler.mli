(** Proactive flow-table compiler: lower the static slice of a PF+=2
    decision diagram ({!Analysis.Fdd}) into a priority-ordered list of
    OpenFlow wildcard matches, so statically-decided traffic never costs
    a controller round-trip.

    The compiler walks the diagram's {!Analysis.Fdd.tree} structure. At
    each node it factors the branch group with the largest expansion
    cost into a {e lower-priority wildcard} rule list (the classic
    NetKAT/NetCore linearization trick): because every branch compiles
    to a total rule list, the other branches' higher-priority rules
    claim their own intervals, and the widest group needs no interval
    expansion at all. The remaining branches expand per dimension:
    address intervals split into aligned CIDR blocks (at most 62 per
    interval), protocol and port intervals enumerate exact values —
    OpenFlow 1.0 has no port masks, which is exactly why a per-branch
    {e region budget} exists. A branch whose expansion would exceed it
    is {e spilled}: the compiler emits a single punt-to-controller rule
    over the node's remaining space instead, soundly returning that
    region to the reactive path (slower, never wrong).

    Reactive leaves compile to punt rules where they mask lowered
    wildcards, and are pruned where they coincide with the table-miss
    default. The result is {e total}: every flow either hits a static
    entry whose action equals {!Pf.Eval}'s verdict for every context,
    or punts (hits a punt entry / misses) to the controller.

    Priorities descend from the top of a band {e below} the controller's
    reactive per-flow entries (default 0x8000) — a reactive flow's
    cached exact-match decision must outrank the compiled punt rule that
    sent its first packet to the controller. Priorities step by 2 so a
    per-switch lowering can wedge host-specialized forwarding entries
    between a pass rule and its successor (see
    {!Core.Controller}). *)

(** What the switch should do with a matching packet, before per-switch
    lowering picks concrete ports. *)
type decision =
  | Decide of Pf.Ast.action
      (** Statically decided: forward (pass) or drop (block). *)
  | Punt  (** Send to the controller: reactive residue. *)

type entry = {
  e_fields : Openflow.Match_fields.t;
  e_priority : int;  (** Descending by position; step 2. *)
  e_decision : decision;
  e_lines : int list;
      (** Possible deciding policy lines (0 = implicit default); empty
          for punts. *)
}

(** A branch left reactive because expanding it would blow the table. *)
type spill = {
  sp_dim : string;  (** ["proto"], ["src"], ["dst"], ["sport"], ["dport"]. *)
  sp_interval : int * int;
  sp_cost : int;  (** Entries an exact expansion would have needed. *)
}

type table = {
  entries : entry list;  (** Highest priority first. *)
  spills : spill list;
  static_coverage : float;  (** The diagram's, see {!Analysis.Fdd}. *)
  installed_coverage : float;
      (** Volume fraction of flow space actually decided by installed
          static entries — [static_coverage] minus spilled and
          truncated volume. *)
  truncated : bool;  (** The [max_entries] guard replaced a tail. *)
}

type cache
(** Memoizes compiled rule lists per hash-consed diagram node, so
    recompiling after a policy edit re-lowers only the changed regions
    (unchanged subdiagrams keep their node ids). One cache must only
    ever see one budget configuration. *)

val create_cache : unit -> cache

val default_max_entries : int
(** 4096 — a small hardware TCAM. *)

val default_region_budget : int
(** 512 — per-branch expansion cap; a port range wider than this spills
    to the reactive path. *)

val priority_floor : int
(** Lowest priority the compiler will ever assign (0x5000). The band
    [floor .. 0x7fff] stays below reactive per-flow entries. *)

val proactive_cookie : int
(** Cookie tagging every proactively installed flow-mod, so eviction
    telemetry can tell compiled entries from reactive ones. *)

val compile :
  ?cache:cache -> ?max_entries:int -> ?region_budget:int -> Analysis.Fdd.t -> table
(** Lower a diagram. [max_entries] (≤ 4096) bounds the emitted table;
    when exceeded, the lowest-priority tail is replaced by one punt-all
    entry and [truncated] is set.
    @raise Invalid_argument if [max_entries] is outside [1, 4096]. *)

type delta = { d_add : entry list; d_del : entry list }

val delta : old_:table -> table -> delta
(** Minimal flow-mod step from [old_] to the new table: entries to
    strict-delete and entries to add. Entries are compared by fields,
    priority and decision; an entry re-added under a changed priority
    appears in both lists (strict delete is by fields). *)

val lookup : table -> Netcore.Five_tuple.t -> decision
(** The abstract table's verdict for one flow: the decision of the
    highest-priority matching entry, or {!Punt} on a miss. This is the
    reference semantics the differential tests check real
    {!Openflow.Flow_table} lowerings against. *)

val verify : table -> Analysis.Fdd.t -> (int, string) result
(** Translation validation: check the table's decision against the
    diagram's verdict on the witness corner of every enumerated region
    — static regions must agree (punting is allowed only when the table
    spilled or truncated), reactive regions must punt. Returns the
    number of regions checked. *)

val decision_to_string : decision -> string
val fields_to_string : Openflow.Match_fields.t -> string
(** e.g. ["proto tcp from 10.0.0.0/8 port any to any port 80"]. *)

val entry_to_string : entry -> string

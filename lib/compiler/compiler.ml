(* FDD -> OpenFlow wildcard-rule lowering. See compiler.mli for the
   factoring/spill/priority scheme. *)

open Netcore
module Fdd = Analysis.Fdd
module MF = Openflow.Match_fields

type decision = Decide of Pf.Ast.action | Punt

type entry = {
  e_fields : MF.t;
  e_priority : int;
  e_decision : decision;
  e_lines : int list;
}

type spill = { sp_dim : string; sp_interval : int * int; sp_cost : int }

type table = {
  entries : entry list;
  spills : spill list;
  static_coverage : float;
  installed_coverage : float;
  truncated : bool;
}

let default_max_entries = 4096
let default_region_budget = 512
let priority_floor = 0x5000
let proactive_cookie = 0xFDD

let dim_top = [| 255; 0xFFFF_FFFF; 0xFFFF_FFFF; 0xFFFF; 0xFFFF |]
let dim_name = [| "proto"; "src"; "dst"; "sport"; "dport" |]

(* Greedy aligned decomposition of an address interval into CIDR
   blocks, largest block aligned at the running lower bound first. *)
let prefixes_of_interval (ilo, ihi) =
  let acc = ref [] and lo = ref ilo in
  while !lo <= ihi do
    let len = ref 32 in
    let block l = 1 lsl (32 - l) in
    while
      !len > 0
      && !lo land (block (!len - 1) - 1) = 0
      && !lo + block (!len - 1) - 1 <= ihi
    do
      decr len
    done;
    acc := Prefix.make (Ipv4.of_int !lo) !len :: !acc;
    lo := !lo + block !len
  done;
  List.rev !acc

(* Entries an exact expansion of one interval needs. Computed before
   materializing anything: port widths can be 65536. *)
let cost_of level (lo, hi) =
  if lo = 0 && hi = dim_top.(level) then 1
  else
    match level with
    | 1 | 2 -> List.length (prefixes_of_interval (lo, hi))
    | _ -> hi - lo + 1

let addr_space = 4294967296.0 (* 2^32 *)

(* The expansion of one interval of one dimension: a list of
   (field-setter, volume fraction) pairs. *)
let atoms_of level (lo, hi) : ((MF.t -> MF.t) * float) list =
  if lo = 0 && hi = dim_top.(level) then [ ((fun m -> m), 1.0) ]
  else
    match level with
    | 0 ->
        List.init (hi - lo + 1) (fun i ->
            let p = Proto.of_int (lo + i) in
            ((fun m -> { m with MF.nw_proto = Some p }), 1.0 /. 256.0))
    | 1 ->
        List.map
          (fun p ->
            ( (fun m -> { m with MF.nw_src = Some p }),
              float_of_int (Prefix.size p) /. addr_space ))
          (prefixes_of_interval (lo, hi))
    | 2 ->
        List.map
          (fun p ->
            ( (fun m -> { m with MF.nw_dst = Some p }),
              float_of_int (Prefix.size p) /. addr_space ))
          (prefixes_of_interval (lo, hi))
    | 3 ->
        List.init (hi - lo + 1) (fun i ->
            let v = lo + i in
            ((fun m -> { m with MF.tp_src = Some v }), 1.0 /. 65536.0))
    | _ ->
        List.init (hi - lo + 1) (fun i ->
            let v = lo + i in
            ((fun m -> { m with MF.tp_dst = Some v }), 1.0 /. 65536.0))

let width_frac level (lo, hi) =
  float_of_int (hi - lo + 1) /. (float_of_int dim_top.(level) +. 1.0)

(* A rule during planning: match built bottom-up (only dimensions at or
   below the emitting node are set), plus the static volume it claims,
   as a fraction of the emitting subtree's space. *)
type rule = {
  r_fields : MF.t;
  r_decision : decision;
  r_lines : int list;
  r_vol : float;
}

type plan = { p_rules : rule list; p_static : float; p_spills : spill list }

(* Children are grouped by identity so several intervals sharing one
   subdiagram can be factored into one wildcard rule block. *)
type gkey = K_verdict of Fdd.verdict | K_split of int * int

let gkey = function
  | Fdd.T_verdict v -> K_verdict v
  | Fdd.T_split { key; level; _ } -> K_split (level, key)

type cache = (int * int, plan) Hashtbl.t

let create_cache () : cache = Hashtbl.create 64

let plan_of_verdict = function
  | Fdd.Static { action; lines } ->
      {
        p_rules =
          [ { r_fields = MF.any; r_decision = Decide action; r_lines = lines; r_vol = 1.0 } ];
        p_static = 1.0;
        p_spills = [];
      }
  | Fdd.Reactive _ ->
      {
        p_rules = [ { r_fields = MF.any; r_decision = Punt; r_lines = []; r_vol = 0.0 } ];
        p_static = 0.0;
        p_spills = [];
      }

let rec plan_of cache budget tree =
  match tree with
  | Fdd.T_verdict v -> plan_of_verdict v
  | Fdd.T_split { key; level; parts } -> (
      match Hashtbl.find_opt cache (level, key) with
      | Some p -> p
      | None ->
          let parts = List.map (fun (iv, c) -> (iv, c, plan_of cache budget c)) parts in
          (* Pick the default group: the set of intervals sharing one
             child whose exact expansion would cost the most. It gets
             the dimension wildcarded for free; the totality of the
             other branches' rules keeps that sound. *)
          let groups = Hashtbl.create 8 in
          List.iter
            (fun (iv, c, pl) ->
              let k = gkey c in
              let saved = cost_of level iv * List.length pl.p_rules in
              let prev = try Hashtbl.find groups k with Not_found -> 0 in
              Hashtbl.replace groups k (prev + saved))
            parts;
          let default_key, _ =
            Hashtbl.fold
              (fun k saved (bk, bs) -> if saved > bs then (k, saved) else (bk, bs))
              groups
              (gkey (let _, c, _ = List.hd parts in c), -1)
          in
          let spilled = ref [] in
          let expanded =
            List.concat_map
              (fun (iv, c, pl) ->
                if gkey c = default_key then []
                else
                  let n = List.length pl.p_rules in
                  let cost = cost_of level iv * n in
                  if cost > budget then begin
                    spilled :=
                      { sp_dim = dim_name.(level); sp_interval = iv; sp_cost = cost }
                      :: !spilled;
                    []
                  end
                  else
                    List.concat_map
                      (fun (set, frac) ->
                        List.map
                          (fun r ->
                            { r with r_fields = set r.r_fields; r_vol = r.r_vol *. frac })
                          pl.p_rules)
                      (atoms_of level iv))
              parts
          in
          let default_frac =
            List.fold_left
              (fun acc (iv, c, _) ->
                if gkey c = default_key then acc +. width_frac level iv else acc)
              0.0 parts
          in
          let default_plan =
            let _, _, pl =
              List.find (fun (_, c, _) -> gkey c = default_key) parts
            in
            pl
          in
          let tail, tail_static =
            if !spilled <> [] then
              (* A spilled branch needs its space punted; one wildcard
                 punt here also masks the default group, soundly
                 returning the rest of this subtree to the controller. *)
              ( [ { r_fields = MF.any; r_decision = Punt; r_lines = []; r_vol = 0.0 } ],
                0.0 )
            else
              ( List.map
                  (fun r -> { r with r_vol = r.r_vol *. default_frac })
                  default_plan.p_rules,
                default_plan.p_static *. default_frac )
          in
          let expanded_static =
            List.fold_left
              (fun acc r ->
                match r.r_decision with Decide _ -> acc +. r.r_vol | Punt -> acc)
              0.0 expanded
          in
          let child_spills =
            let seen = Hashtbl.create 8 in
            List.concat_map
              (fun (_, c, pl) ->
                let k = gkey c in
                if Hashtbl.mem seen k then []
                else begin
                  Hashtbl.add seen k ();
                  pl.p_spills
                end)
              parts
          in
          let p =
            {
              p_rules = expanded @ tail;
              p_static = expanded_static +. tail_static;
              p_spills = !spilled @ child_spills;
            }
          in
          Hashtbl.add cache (level, key) p;
          p)

(* Provably no packet matches both (used to justify collapsing a rule
   into a later identical-decision wildcard). *)
let fields_disjoint (a : MF.t) (b : MF.t) =
  let exact_ne x y = match (x, y) with Some u, Some v -> u <> v | _ -> false in
  (match (a.MF.nw_proto, b.MF.nw_proto) with
  | Some p, Some q -> not (Proto.equal p q)
  | _ -> false)
  || (match (a.MF.nw_src, b.MF.nw_src) with
     | Some p, Some q -> not (Prefix.overlaps p q)
     | _ -> false)
  || (match (a.MF.nw_dst, b.MF.nw_dst) with
     | Some p, Some q -> not (Prefix.overlaps p q)
     | _ -> false)
  || exact_ne a.MF.tp_src b.MF.tp_src
  || exact_ne a.MF.tp_dst b.MF.tp_dst

(* Drop a rule when the final match-all rule has the same decision and
   every rule in between either shares that decision or is disjoint
   from the dropped one — the packet lands on an equivalent rule.
   Returns the kept rules and the static volume reclaimed by the
   final rule. *)
let collapse_into_tail rules =
  let n = List.length rules in
  if n < 2 || n > 2048 then (rules, 0.0)
  else
    let arr = Array.of_list rules in
    let last = arr.(n - 1) in
    if not (MF.equal last.r_fields MF.any) then (rules, 0.0)
    else begin
      let reclaimed = ref 0.0 in
      let kept = ref [ last ] in
      for i = n - 2 downto 0 do
        let r = arr.(i) in
        let removable =
          r.r_decision = last.r_decision
          && begin
               let ok = ref true in
               for k = i + 1 to n - 2 do
                 let between = arr.(k) in
                 if
                   between.r_decision <> r.r_decision
                   && not (fields_disjoint between.r_fields r.r_fields)
                 then ok := false
               done;
               !ok
             end
        in
        if removable then
          match r.r_decision with
          | Decide _ -> reclaimed := !reclaimed +. r.r_vol
          | Punt -> ()
        else kept := r :: !kept
      done;
      (!kept, !reclaimed)
    end

let drop_trailing_punts rules =
  let rec skip = function
    | { r_decision = Punt; _ } :: rest -> skip rest
    | l -> l
  in
  List.rev (skip (List.rev rules))

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let rec drop n = function
  | rest when n <= 0 -> rest
  | [] -> []
  | _ :: rest -> drop (n - 1) rest

let compile ?cache ?(max_entries = default_max_entries)
    ?(region_budget = default_region_budget) fdd =
  if max_entries < 1 || max_entries > default_max_entries then
    invalid_arg "Compiler.compile: max_entries outside [1, 4096]";
  let cache = match cache with Some c -> c | None -> create_cache () in
  let pl = plan_of cache region_budget (Fdd.tree fdd) in
  let rules = drop_trailing_punts pl.p_rules in
  let rules, reclaimed = collapse_into_tail rules in
  let rules = drop_trailing_punts rules in
  let truncated, lost, rules =
    if List.length rules > max_entries then
      let keep = take (max_entries - 1) rules in
      let dropped = drop (max_entries - 1) rules in
      let lost =
        List.fold_left
          (fun acc r ->
            match r.r_decision with Decide _ -> acc +. r.r_vol | Punt -> acc)
          0.0 dropped
      in
      ( true,
        lost,
        keep @ [ { r_fields = MF.any; r_decision = Punt; r_lines = []; r_vol = 0.0 } ] )
    else (false, 0.0, rules)
  in
  let n = List.length rules in
  let entries =
    List.mapi
      (fun i r ->
        {
          e_fields = r.r_fields;
          e_priority = priority_floor + (2 * (n - 1 - i));
          e_decision = r.r_decision;
          e_lines = r.r_lines;
        })
      rules
  in
  let installed =
    List.fold_left
      (fun acc r ->
        match r.r_decision with Decide _ -> acc +. r.r_vol | Punt -> acc)
      0.0 rules
    +. reclaimed -. lost
  in
  let installed = max 0.0 (min 1.0 installed) in
  {
    entries;
    spills = pl.p_spills;
    static_coverage = Fdd.static_coverage fdd;
    installed_coverage = installed;
    truncated;
  }

(* --- deltas --- *)

type delta = { d_add : entry list; d_del : entry list }

module EMap = Map.Make (struct
  type t = MF.t * int

  let compare (fa, pa) (fb, pb) =
    let c = compare pa pb in
    if c <> 0 then c else MF.compare fa fb
end)

module FMap = Map.Make (MF)

let delta ~old_ cur =
  let index t =
    List.fold_left (fun m e -> EMap.add (e.e_fields, e.e_priority) e m) EMap.empty t.entries
  in
  let io = index old_ and ic = index cur in
  let same a b = a.e_decision = b.e_decision in
  let dels =
    List.filter
      (fun e ->
        match EMap.find_opt (e.e_fields, e.e_priority) ic with
        | Some e' -> not (same e e')
        | None -> true)
      old_.entries
  in
  let deleted_fields =
    List.fold_left (fun m e -> FMap.add e.e_fields () m) FMap.empty dels
  in
  (* Strict delete removes by fields alone, so any surviving entry that
     shares fields with a deleted one must be re-added. *)
  let adds =
    List.filter
      (fun e ->
        (match EMap.find_opt (e.e_fields, e.e_priority) io with
        | Some e' -> not (same e e')
        | None -> true)
        || FMap.mem e.e_fields deleted_fields)
      cur.entries
  in
  { d_add = adds; d_del = dels }

(* --- reference semantics --- *)

let matches_flow (m : MF.t) (fl : Five_tuple.t) =
  (match m.MF.nw_proto with None -> true | Some p -> Proto.equal p fl.proto)
  && (match m.MF.nw_src with None -> true | Some p -> Prefix.mem fl.src p)
  && (match m.MF.nw_dst with None -> true | Some p -> Prefix.mem fl.dst p)
  && (match m.MF.tp_src with None -> true | Some v -> v = fl.src_port)
  && match m.MF.tp_dst with None -> true | Some v -> v = fl.dst_port

let lookup t fl =
  match List.find_opt (fun e -> matches_flow e.e_fields fl) t.entries with
  | Some e -> e.e_decision
  | None -> Punt

let verify t fdd =
  let sl = Fdd.static_slice fdd in
  let lenient = t.spills <> [] || t.truncated || sl.Fdd.s_truncated in
  let checked = ref 0 in
  let fail rg expected got =
    Error
      (Printf.sprintf "region %s: table says %s, diagram says %s"
         (Fdd.region_to_string rg) got expected)
  in
  let act_str = function Pf.Ast.Pass -> "pass" | Pf.Ast.Block -> "block" in
  let rec check_static = function
    | [] -> Ok ()
    | (rg, action, _) :: rest -> (
        incr checked;
        match lookup t (Fdd.region_witness rg) with
        | Decide a when a = action -> check_static rest
        | Punt when lenient -> check_static rest
        | Decide a -> fail rg (act_str action) (act_str a)
        | Punt -> fail rg (act_str action) "punt")
  in
  let rec check_reactive = function
    | [] -> Ok ()
    | (rg, _) :: rest -> (
        incr checked;
        match lookup t (Fdd.region_witness rg) with
        | Punt -> check_reactive rest
        | Decide a -> fail rg "reactive (punt)" (act_str a))
  in
  match check_static sl.Fdd.s_static with
  | Error _ as e -> e
  | Ok () -> (
      match check_reactive sl.Fdd.s_reactive with
      | Error _ as e -> e
      | Ok () -> Ok !checked)

(* --- rendering --- *)

let decision_to_string = function
  | Decide Pf.Ast.Pass -> "pass"
  | Decide Pf.Ast.Block -> "block"
  | Punt -> "punt"

let fields_to_string (m : MF.t) =
  let proto = match m.MF.nw_proto with None -> "any" | Some p -> Proto.to_string p in
  let pfx = function None -> "any" | Some p -> Prefix.to_string p in
  let port = function None -> "any" | Some v -> string_of_int v in
  Printf.sprintf "proto %s from %s port %s to %s port %s" proto
    (pfx m.MF.nw_src) (port m.MF.tp_src) (pfx m.MF.nw_dst) (port m.MF.tp_dst)

let entry_to_string e =
  let lines =
    match e.e_lines with
    | [] -> ""
    | ls ->
        Printf.sprintf "  (line %s)"
          (String.concat ","
             (List.map (function 0 -> "default" | l -> string_of_int l) ls))
  in
  Printf.sprintf "%5d %-5s %s%s" e.e_priority
    (decision_to_string e.e_decision)
    (fields_to_string e.e_fields) lines

(* netsim: run a named simulation scenario end-to-end and print the
   event trace.

     netsim fig1          the paper's Figure-1 flow-setup sequence
     netsim linear        a 4-switch chain, one flow across it
     netsim branches      two ident++ domains collaborating (§4)

   Run with: dune exec bin/netsim.exe -- fig1 *)

open Cmdliner
open Netcore
module Net = Openflow.Network
module Topo = Openflow.Topology
module C = Identxx_core.Controller
module Deploy = Identxx_core.Deploy
module PS = Identxx_core.Policy_store
module Fabric = Workload.Fabric

(* Daemon service time is measured on the simulated clock, so metric
   output is deterministic and cram-testable. *)
let sim_clock engine () = Sim.Time.to_float_s (Sim.Engine.now engine)

let host_metrics obs engine hosts =
  List.iter (fun h -> Identxx.Host.set_metrics h ~clock:(sim_clock engine) obs) hosts

(* Continuous-monitoring state threaded through every scenario builder:
   the flight recorder (handed to each controller), the optional
   windowed health engine, and any hosts to silence. Health windows
   close on the simulated clock at a fixed schedule of [mon_ticks]
   pre-scheduled closes (a self-rescheduling tick would keep the
   event-driven sim alive forever), so runs with the same seed dump
   byte-identical health timelines whatever the shard count. *)
type mon = {
  mon_recorder : Obs.Recorder.t;
  mon_health : float option;
  mon_silence : string list;
  mon_ticks : int;
  mutable mon_engine : Obs.Health.t option;
}

let mon_arm mon ~engine ~obs ~spans hosts =
  List.iter
    (fun name ->
      match List.find_opt (fun h -> Identxx.Host.name h = name) hosts with
      | Some h ->
          Identxx.Daemon.set_behaviour (Identxx.Host.daemon h)
            Identxx.Daemon.Silent
      | None ->
          prerr_endline ("netsim: --silence: no host named " ^ name);
          exit 1)
    mon.mon_silence;
  match mon.mon_health with
  | None -> ()
  | Some interval ->
      let window = Obs.Window.create ~interval ~now:0. obs in
      let health =
        Obs.Health.create ~recorder:mon.mon_recorder ~spans ~registry:obs
          window
      in
      mon.mon_engine <- Some health;
      for k = 1 to mon.mon_ticks do
        let at = float_of_int k *. interval in
        Sim.Engine.schedule engine ~delay:(Sim.Time.of_float_s at) (fun () ->
            ignore (Obs.Health.force_step health ~now:at))
      done

(* With --proactive, give the compiled flow-mods (in flight on the
   control channel since the policy was loaded) time to land before the
   first packet: deployed switches get their table at connect time, long
   before traffic. Reactive runs keep injecting at t=0, preserving the
   pinned Figure-1 timeline. *)
let inject ~config ~engine f =
  if config.C.proactive then Sim.Engine.schedule engine ~delay:(Sim.Time.ms 1) f
  else f ()

let print_summary ?(controllers = []) network =
  Format.printf "@.=== trace ===@.%a" Sim.Trace.pp (Net.trace network);
  Format.printf "@.=== summary ===@.";
  Format.printf "packets delivered to hosts: %d@." (Net.delivered network);
  Format.printf "packets dropped:            %d@." (Net.dropped network);
  Format.printf "packet-ins:                 %d@." (Net.packet_ins network);
  List.iter
    (fun (name, c) ->
      let st = C.stats c in
      Format.printf
        "%s: flows=%d allowed=%d blocked=%d queries=%d responses=%d@." name
        st.C.flows_seen st.C.allowed st.C.blocked st.C.queries_sent
        st.C.responses_received;
      Format.printf "%s: query timeouts=%d retries sent=%d@." name
        st.C.query_timeouts st.C.query_retries_sent;
      if (C.config c).C.proactive then begin
        let tbl = C.proactive_table c in
        Format.printf
          "%s: proactive entries=%d installed-coverage=%.3f spills=%d%s@." name
          (List.length tbl.Compiler.entries)
          tbl.Compiler.installed_coverage
          (List.length tbl.Compiler.spills)
          (if tbl.Compiler.truncated then " (truncated)" else "")
      end;
      if Fastpath.enabled (C.fastpath c) then
        Format.printf
          "%s: fastpath decisions=%d attr-cache %d/%d (evict %d, inval %d) \
           decision-cache %d/%d (evict %d) breaker trips=%d fastpaths=%d@."
          name st.C.fastpath_decisions st.C.attr_cache_hits
          st.C.attr_cache_misses st.C.attr_cache_evictions
          st.C.attr_cache_invalidations st.C.decision_cache_hits
          st.C.decision_cache_misses st.C.decision_cache_evictions
          st.C.breaker_trips st.C.breaker_fastpaths;
      if (C.config c).C.shards <> None then
        (* Wire exchanges, coalesced joins and flushes are functions of
           the (deterministic) event order, not the shard count — only
           the shard count itself varies here. *)
        Format.printf
          "%s: shards=%d wire-exchanges=%d coalesced=%d batch-flushes=%d@."
          name (C.shard_count c) (C.wire_exchanges c) (C.coalesced_queries c)
          (C.batch_flushes c))
    controllers

(* Machine-readable end-of-run report (same numbers as the summary), so
   scenario runs can be diffed or plotted without scraping the trace. *)
let write_json ~scenario ~file ~controllers network =
  let oc = open_out file in
  Printf.fprintf oc
    "{\n\
    \  \"scenario\": \"%s\",\n\
    \  \"delivered\": %d,\n\
    \  \"dropped\": %d,\n\
    \  \"packet_ins\": %d,\n\
    \  \"controllers\": [\n"
    scenario (Net.delivered network) (Net.dropped network)
    (Net.packet_ins network);
  List.iteri
    (fun i (name, c) ->
      let st = C.stats c in
      Printf.fprintf oc
        "    { \"name\": \"%s\", \"flows_seen\": %d, \"allowed\": %d, \
         \"blocked\": %d,\n\
        \      \"queries_sent\": %d, \"responses_received\": %d, \
         \"query_timeouts\": %d, \"query_retries_sent\": %d,\n\
        \      \"fastpath_enabled\": %b, \"fastpath_decisions\": %d,\n\
        \      \"attr_cache_hits\": %d, \"attr_cache_misses\": %d, \
         \"attr_cache_evictions\": %d, \"attr_cache_invalidations\": %d,\n\
        \      \"decision_cache_hits\": %d, \"decision_cache_misses\": %d, \
         \"decision_cache_evictions\": %d,\n\
        \      \"breaker_trips\": %d, \"breaker_fastpaths\": %d }%s\n"
        name st.C.flows_seen st.C.allowed st.C.blocked st.C.queries_sent
        st.C.responses_received st.C.query_timeouts st.C.query_retries_sent
        (Fastpath.enabled (C.fastpath c))
        st.C.fastpath_decisions st.C.attr_cache_hits st.C.attr_cache_misses
        st.C.attr_cache_evictions st.C.attr_cache_invalidations
        st.C.decision_cache_hits st.C.decision_cache_misses
        st.C.decision_cache_evictions st.C.breaker_trips st.C.breaker_fastpaths
        (if i = List.length controllers - 1 then "" else ","))
    controllers;
  output_string oc "  ]\n}\n";
  close_out oc;
  Format.printf "wrote %s@." file

let fig1 ?extra_flow ~arm ~config ~obs ~spans ~mon () =
  let s =
    Deploy.simple_network ~config ~obs ~spans ~recorder:mon.mon_recorder ()
  in
  arm s.Deploy.network;
  host_metrics obs s.Deploy.engine [ s.Deploy.client; s.Deploy.server ];
  mon_arm mon ~engine:s.Deploy.engine ~obs ~spans
    [ s.Deploy.client; s.Deploy.server ];
  PS.add_exn (C.policy s.controller) ~name:"00"
    "block all\npass all with eq(@src[name], firefox) keep state";
  let proc = Identxx.Host.run s.client ~user:"alice" ~exe:"/usr/bin/firefox" () in
  let flow =
    Identxx.Host.connect s.client ~proc ~dst:(Identxx.Host.ip s.server)
      ~dst_port:80 ()
  in
  inject ~config ~engine:s.engine (fun () ->
      Net.send_from_host s.network ~name:"client"
        (Identxx.Host.first_packet s.client ~flow));
  (* A second client flow from EXE (not firefox ⇒ denied by the policy
     above): the deterministic deny for exercising always-on sampling
     of error traces. *)
  (match extra_flow with
  | None -> ()
  | Some exe ->
      let proc2 = Identxx.Host.run s.client ~user:"mallory" ~exe () in
      let flow2 =
        Identxx.Host.connect s.client ~proc:proc2
          ~dst:(Identxx.Host.ip s.server) ~dst_port:81 ()
      in
      Net.send_from_host s.network ~name:"client"
        (Identxx.Host.first_packet s.client ~flow:flow2));
  Sim.Engine.run s.engine;
  Format.printf "Figure 1: client -> switch -> controller -> ident++ -> install -> deliver@.";
  (s.network, [ ("controller", s.controller) ])

let linear ~arm ~config ~obs ~spans ~mon () =
  let engine, network, controller, hosts =
    Deploy.linear_network ~config ~obs ~spans ~recorder:mon.mon_recorder
      ~switches:4 ~hosts_per_switch:1 ()
  in
  arm network;
  host_metrics obs engine (Array.to_list hosts);
  mon_arm mon ~engine ~obs ~spans (Array.to_list hosts);
  PS.add_exn (C.policy controller) ~name:"00" "pass all";
  let h1 = hosts.(0) and h4 = hosts.(3) in
  let proc = Identxx.Host.run h1 ~user:"u" ~exe:"/bin/app" () in
  let flow =
    Identxx.Host.connect h1 ~proc ~dst:(Identxx.Host.ip h4) ~dst_port:80 ()
  in
  inject ~config ~engine (fun () ->
      Net.send_from_host network ~name:(Identxx.Host.name h1)
        (Identxx.Host.first_packet h1 ~flow));
  Sim.Engine.run engine;
  Format.printf "linear: one flow across a 4-switch chain@.";
  (network, [ ("controller", controller) ])

let tree ~arm ~config ~obs ~spans ~mon () =
  let engine, network, controller, hosts =
    Deploy.tree_network ~config ~obs ~spans ~recorder:mon.mon_recorder ~depth:3
      ~fanout:2 ~hosts_per_edge:1 ()
  in
  arm network;
  host_metrics obs engine (Array.to_list hosts);
  mon_arm mon ~engine ~obs ~spans (Array.to_list hosts);
  PS.add_exn (C.policy controller) ~name:"00" "pass all";
  let src = hosts.(0) and dst = hosts.(Array.length hosts - 1) in
  let proc = Identxx.Host.run src ~user:"u" ~exe:"/bin/app" () in
  let flow =
    Identxx.Host.connect src ~proc ~dst:(Identxx.Host.ip dst) ~dst_port:80 ()
  in
  inject ~config ~engine (fun () ->
      Net.send_from_host network ~name:(Identxx.Host.name src)
        (Identxx.Host.first_packet src ~flow));
  Sim.Engine.run engine;
  Format.printf "tree: cross-pod flow over a depth-3 binary tree (7 switches)@.";
  (network, [ ("controller", controller) ])

let branches ~arm ~config ~obs ~spans ~mon () =
  let engine = Sim.Engine.create () in
  let topology = Topo.create () in
  Topo.add_switch topology 1;
  Topo.add_switch topology 2;
  List.iter (Topo.add_host topology) [ "a1"; "b1" ];
  Topo.link topology (Topo.Host "a1", 0) (Topo.Sw 1, 1);
  Topo.link topology (Topo.Host "b1", 0) (Topo.Sw 2, 1);
  Topo.link topology ~latency:(Sim.Time.ms 2) (Topo.Sw 1, 9) (Topo.Sw 2, 9);
  let network = Net.create ~engine ~topology () in
  arm network;
  let ca =
    C.create ~config ~obs ~spans ~recorder:mon.mon_recorder ~network ~id:0 ()
  in
  let cb =
    C.create ~config ~obs ~spans ~recorder:mon.mon_recorder ~network ~id:1 ()
  in
  Net.assign_switch network 1 0;
  Net.assign_switch network 2 1;
  PS.add_exn (C.policy ca) ~name:"00"
    "block all\npass all with member(@src[name], @dst[branch-b-accepts])";
  PS.add_exn (C.policy cb) ~name:"00" "pass all";
  C.set_response_augment cb (fun _ ->
      [ Identxx.Key_value.pair "branch-b-accepts" "{ firefox ssh }" ]);
  let a1 =
    Identxx.Host.create ~name:"a1" ~mac:(Mac.of_int 0xa1)
      ~ip:(Ipv4.of_string "10.10.0.1") ()
  in
  let b1 =
    Identxx.Host.create ~name:"b1" ~mac:(Mac.of_int 0xb1)
      ~ip:(Ipv4.of_string "10.20.0.1") ()
  in
  List.iter (Deploy.attach_host network) [ a1; b1 ];
  host_metrics obs engine [ a1; b1 ];
  mon_arm mon ~engine ~obs ~spans [ a1; b1 ];
  let proc = Identxx.Host.run a1 ~user:"u" ~exe:"/usr/bin/firefox" () in
  let flow =
    Identxx.Host.connect a1 ~proc ~dst:(Identxx.Host.ip b1) ~dst_port:80 ()
  in
  inject ~config ~engine (fun () ->
      Net.send_from_host network ~name:"a1" (Identxx.Host.first_packet a1 ~flow));
  Sim.Engine.run engine;
  Format.printf "branches: two collaborating ident++ domains@.";
  (network, [ ("branch-a", ca); ("branch-b", cb) ])

(* Stand up a generated fabric (Workload.Fabric): one switch per
   topology dpid, one ident++ host per placement slot, one controller
   for the whole fabric. *)
let fabric_network ~config ~obs ~spans ~recorder (fab : Fabric.t) =
  let engine = Sim.Engine.create () in
  let network = Net.create ~engine ~topology:fab.Fabric.topology () in
  let controller = C.create ~config ~obs ~spans ~recorder ~network ~id:0 () in
  let hosts =
    Array.map
      (fun hs ->
        Identxx.Host.create ~name:hs.Fabric.hs_name ~mac:hs.Fabric.hs_mac
          ~ip:hs.Fabric.hs_ip ())
      fab.Fabric.hosts
  in
  Array.iter (fun h -> Deploy.attach_host network h) hosts;
  Deploy.watch_hosts controller hosts;
  (engine, network, controller, hosts)

(* A generated datacenter fabric (--topo, default fat-tree:k=4): print
   the deterministic shape and a sample precomputed route, then push
   one flow across the whole fabric — first host to last host, the
   longest generated path. *)
let fabric ~topo ~arm ~config ~obs ~spans ~mon () =
  let fab = Fabric.build topo in
  let engine, network, controller, hosts =
    fabric_network ~config ~obs ~spans ~recorder:mon.mon_recorder fab
  in
  arm network;
  let src = hosts.(0) and dst = hosts.(Array.length hosts - 1) in
  host_metrics obs engine [ src; dst ];
  mon_arm mon ~engine ~obs ~spans [ src; dst ];
  PS.add_exn (C.policy controller) ~name:"00" "pass all";
  Format.printf "%s@." (Fabric.describe fab);
  (match
     Topo.switch_path (Net.topology network) ~src:(Identxx.Host.name src)
       ~dst:(Identxx.Host.name dst)
   with
  | Some hops ->
      Format.printf "route %s -> %s: %s@." (Identxx.Host.name src)
        (Identxx.Host.name dst)
        (String.concat " -> "
           (List.map (fun (d, _, _) -> Printf.sprintf "s%d" d) hops))
  | None ->
      Format.printf "route %s -> %s: unreachable@." (Identxx.Host.name src)
        (Identxx.Host.name dst));
  let proc = Identxx.Host.run src ~user:"u" ~exe:"/bin/app" () in
  let flow =
    Identxx.Host.connect src ~proc ~dst:(Identxx.Host.ip dst) ~dst_port:80 ()
  in
  inject ~config ~engine (fun () ->
      Net.send_from_host network ~name:(Identxx.Host.name src)
        (Identxx.Host.first_packet src ~flow));
  Sim.Engine.run engine;
  Format.printf "fabric: one cross-fabric flow over %s@."
    (Fabric.spec_to_string fab.Fabric.spec);
  (network, [ ("controller", controller) ])

(* A deterministic concurrent flow burst: 16 hosts on a 4-switch
   chain, every other host opening a flow to host 0 at t=0. All the
   dst-end queries target host 0, so with --shards (coalescing on) the
   15 concurrent misses share one wire exchange — the scenario the
   sharded flow-setup engine exists for. With --topo the same
   convergent burst runs over a generated fabric instead. *)
let burst ?fab ~arm ~config ~obs ~spans ~mon () =
  let engine, network, controller, hosts =
    match fab with
    | None ->
        Deploy.linear_network ~config ~obs ~spans
          ~recorder:mon.mon_recorder ~switches:4 ~hosts_per_switch:4 ()
    | Some fab ->
        fabric_network ~config ~obs ~spans ~recorder:mon.mon_recorder
          (Fabric.build fab)
  in
  arm network;
  host_metrics obs engine (Array.to_list hosts);
  mon_arm mon ~engine ~obs ~spans (Array.to_list hosts);
  PS.add_exn (C.policy controller) ~name:"00"
    "block all\npass all with eq(@src[name], app) keep state";
  let target = hosts.(0) in
  inject ~config ~engine (fun () ->
      Array.iteri
        (fun i h ->
          if i > 0 then begin
            let proc = Identxx.Host.run h ~user:"u" ~exe:"/bin/app" () in
            let flow =
              Identxx.Host.connect h ~proc ~dst:(Identxx.Host.ip target)
                ~dst_port:80 ()
            in
            Net.send_from_host network ~name:(Identxx.Host.name h)
              (Identxx.Host.first_packet h ~flow)
          end)
        hosts);
  Sim.Engine.run engine;
  Format.printf "burst: %d concurrent flows converging on one host@."
    (Array.length hosts - 1);
  (network, [ ("controller", controller) ])

(* Optionally capture every frame the scenario emits to a pcap file. *)
let with_capture pcap_path f =
  match pcap_path with
  | None -> f (fun _net -> ())
  | Some path ->
      let buf = Buffer.create 4096 in
      let writer = Netcore.Pcap.create_writer buf in
      let code = f (fun net -> Net.set_capture net (Some writer)) in
      let oc = open_out_bin path in
      Buffer.output_buffer oc buf;
      close_out oc;
      Format.printf "wrote %d frames to %s@." (Netcore.Pcap.packet_count writer) path;
      code

let () =
  let scenario =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [ ("fig1", `Fig1); ("linear", `Linear); ("branches", `Branches);
                  ("tree", `Tree); ("burst", `Burst); ("fabric", `Fabric) ]))
          None
      & info [] ~docv:"SCENARIO"
          ~doc:"fig1, linear, branches, tree, burst or fabric")
  in
  let topo =
    Arg.(
      value
      & opt (some string) None
      & info [ "topo" ] ~docv:"SPEC"
          ~doc:"Generated fabric for the fabric and burst scenarios: \
                fat-tree:k=N (N even) or \
                leaf-spine:spines=N,leaves=N,hosts=N (see doc/TOPOLOGY.md). \
                The fabric scenario defaults to fat-tree:k=4.")
  in
  let pcap =
    Arg.(
      value
      & opt (some string) None
      & info [ "pcap" ] ~docv:"FILE" ~doc:"Write all emitted frames to a pcap file.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the end-of-run summary (delivery and controller \
                counters) to FILE as JSON.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"After the run, print the metrics registry as Prometheus text \
                exposition format and as a JSON snapshot (see \
                doc/OBSERVABILITY.md for the catalog).")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:"Write the JSON metrics snapshot to FILE (readable with \
                identxx_ctl metrics).")
  in
  let spans_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "spans" ] ~docv:"FILE"
          ~doc:"Enable flow-setup span collection and write the finished \
                spans to FILE as JSON.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Enable tracing and write finished spans to FILE as JSON \
                Lines (one span object per line); readable with identxx_ctl \
                trace.")
  in
  let trace_sample =
    Arg.(
      value & opt float 1.0
      & info [ "trace-sample" ] ~docv:"RATE"
          ~doc:"Head-sampling rate in [0,1] (default 1: keep every trace). \
                Denied, timed-out and rejected flows are always kept.")
  in
  let extra_flow =
    Arg.(
      value
      & opt (some string) None
      & info [ "extra-flow" ] ~docv:"EXE"
          ~doc:"fig1 only: start a second client flow from EXE (any \
                non-firefox EXE is denied by the fig1 policy) — a \
                deterministic error trace.")
  in
  let proactive =
    Arg.(
      value & flag
      & info [ "proactive" ]
          ~doc:"Compile the policy's static slice into wildcard flow entries \
                and keep them installed on every switch (see identxx_ctl \
                compile): statically-decided flows never cost a packet-in. \
                Off by default, matching the paper's reactive exchange.")
  in
  let fp = Fastpath.default_config in
  let fastpath =
    Arg.(
      value & flag
      & info [ "fastpath" ]
          ~doc:"Enable the controller's flow-setup fast path (attribute and \
                decision caches, silent-host circuit breaker). Off by \
                default, matching the controller default.")
  in
  let attr_capacity =
    Arg.(
      value
      & opt int fp.Fastpath.attr_capacity
      & info [ "attr-capacity" ] ~docv:"N"
          ~doc:"Attribute-cache capacity (entries), with --fastpath.")
  in
  let attr_ttl =
    Arg.(
      value
      & opt float (Sim.Time.to_float_s fp.Fastpath.attr_ttl)
      & info [ "attr-ttl" ] ~docv:"SECONDS"
          ~doc:"Attribute-cache entry TTL, with --fastpath.")
  in
  let decision_capacity =
    Arg.(
      value
      & opt int fp.Fastpath.decision_capacity
      & info [ "decision-capacity" ] ~docv:"N"
          ~doc:"Decision-cache capacity (entries), with --fastpath.")
  in
  let breaker_threshold =
    Arg.(
      value
      & opt int fp.Fastpath.breaker_threshold
      & info [ "breaker-threshold" ] ~docv:"N"
          ~doc:"Consecutive query timeouts before a host's circuit breaker \
                trips, with --fastpath.")
  in
  let breaker_backoff =
    Arg.(
      value
      & opt float (Sim.Time.to_float_s fp.Fastpath.breaker_backoff)
      & info [ "breaker-backoff" ] ~docv:"SECONDS"
          ~doc:"How long a tripped breaker stays open before a re-probe, \
                with --fastpath.")
  in
  let shards =
    Arg.(
      value & opt int 0
      & info [ "shards" ] ~docv:"N"
          ~doc:"Partition flow setup across N shards with query coalescing \
                and batched installs (see DESIGN.md \xc2\xa712). 0 (the \
                default) keeps the original sequential path. Counters and \
                the --json report aggregate across shards, so the numbers \
                are shard-count invariant.")
  in
  let health =
    Arg.(
      value
      & opt (some float) None
      & info [ "health" ] ~docv:"SECONDS"
          ~doc:"Enable the windowed health engine with SECONDS-long windows \
                on the simulated clock: 64 window closes are scheduled up \
                front, each sampling the registry and evaluating the default \
                health rules (see doc/OBSERVABILITY.md). Fired events print \
                in a deterministic === health === section.")
  in
  let flight_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-out" ] ~docv:"FILE"
          ~doc:"Enable the flight recorder and write its JSONL dump to FILE \
                (- for stdout) at end of run; readable with identxx_ctl \
                health. The dump reason is the last fired health rule, or \
                end-of-run when none fired.")
  in
  let silence =
    Arg.(
      value & opt_all string []
      & info [ "silence" ] ~docv:"HOST"
          ~doc:"Make HOST's ident++ daemon silent (never answers) — the \
                deterministic way to exercise query timeouts and breaker \
                trips. Repeatable.")
  in
  let run scenario topo pcap verbose json metrics metrics_json spans_file
      trace_out trace_sample extra_flow proactive fastpath attr_capacity
      attr_ttl decision_capacity breaker_threshold breaker_backoff shards
      health flight_out silence =
    if verbose then begin
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level (Some Logs.Debug)
    end;
    if trace_sample < 0. || trace_sample > 1. then begin
      prerr_endline "netsim: --trace-sample must be in [0, 1]";
      exit 1
    end;
    if shards < 0 then begin
      prerr_endline "netsim: --shards must be >= 0";
      exit 1
    end;
    (match health with
    | Some s when s <= 0. ->
        prerr_endline "netsim: --health must be > 0";
        exit 1
    | _ -> ());
    let topo_spec =
      match topo with
      | None -> None
      | Some s -> (
          match Fabric.spec_of_string s with
          | Ok spec -> Some spec
          | Error e ->
              prerr_endline ("netsim: --topo: " ^ e);
              exit 1)
    in
    (match (scenario, topo_spec) with
    | (`Fig1 | `Linear | `Branches | `Tree), Some _ ->
        prerr_endline "netsim: --topo applies to the fabric and burst scenarios";
        exit 1
    | _ -> ());
    let obs = Obs.Registry.create () in
    let recorder =
      Obs.Recorder.create ~enabled:(Option.is_some flight_out) ()
    in
    let mon =
      {
        mon_recorder = recorder;
        mon_health = health;
        mon_silence = silence;
        mon_ticks = 64;
        mon_engine = None;
      }
    in
    let spans =
      Obs.Span.create
        ~enabled:(Option.is_some spans_file || Option.is_some trace_out)
        ()
    in
    Obs.Span.set_sample_rate spans trace_sample;
    let config =
      {
        C.default_config with
        C.proactive;
        C.fastpath =
          (if not fastpath then Fastpath.disabled
           else
             {
               fp with
               Fastpath.attr_capacity;
               attr_ttl = Sim.Time.of_float_s attr_ttl;
               decision_capacity;
               breaker_threshold;
               breaker_backoff = Sim.Time.of_float_s breaker_backoff;
             });
        C.shards = (if shards = 0 then None else Some (C.sharded shards));
      }
    in
    with_capture pcap (fun arm ->
        let name, build =
          match scenario with
          | `Fig1 -> ("fig1", fig1 ?extra_flow)
          | `Linear -> ("linear", linear)
          | `Branches -> ("branches", branches)
          | `Tree -> ("tree", tree)
          | `Burst -> ("burst", burst ?fab:topo_spec)
          | `Fabric ->
              let topo =
                Option.value topo_spec ~default:(Fabric.Fat_tree { k = 4 })
              in
              ("fabric", fabric ~topo)
        in
        let network, controllers = build ~arm ~config ~obs ~spans ~mon () in
        (* Network-level series are sampled from the simulator's own
           counters at snapshot time. *)
        Obs.Registry.counter_fn obs
          ~help:"Packets delivered to end hosts."
          "identxx_net_packets_delivered_total" (fun () ->
            Net.delivered network);
        Obs.Registry.counter_fn obs ~help:"Packets dropped by the fabric."
          "identxx_net_packets_dropped_total" (fun () -> Net.dropped network);
        Obs.Registry.counter_fn obs
          ~help:"Table-miss packets sent to a controller."
          "identxx_net_packet_ins_total" (fun () -> Net.packet_ins network);
        print_summary ~controllers network;
        (match mon.mon_engine with
        | None -> ()
        | Some h ->
            Format.printf "@.=== health ===@.";
            Format.printf "windows closed: %d@." (Obs.Health.windows_closed h);
            let evs = Obs.Health.events h in
            Format.printf "events fired: %d@." (List.length evs);
            List.iter
              (fun e ->
                Format.printf "  [w%d @%gs] %s%s value=%g threshold=%g@."
                  e.Obs.Health.e_window e.Obs.Health.e_at e.Obs.Health.e_rule
                  (match e.Obs.Health.e_labels with
                  | [] -> ""
                  | ls ->
                      "{"
                      ^ String.concat ","
                          (List.map (fun (k, v) -> k ^ "=" ^ v) ls)
                      ^ "}")
                  e.Obs.Health.e_value e.Obs.Health.e_threshold)
              evs);
        Option.iter
          (fun file ->
            let reason =
              match mon.mon_engine with
              | Some h -> (
                  match List.rev (Obs.Health.events h) with
                  | e :: _ -> e.Obs.Health.e_rule
                  | [] -> "end-of-run")
              | None -> "end-of-run"
            in
            let at =
              Sim.Time.to_float_s (Sim.Engine.now (Net.engine network))
            in
            Obs.Recorder.dump_to ~reason ~at ~file recorder;
            if file <> "-" then
              Format.printf "wrote %d flight-recorder events to %s@."
                (Obs.Recorder.count recorder)
                file)
          flight_out;
        if metrics then begin
          Format.printf "@.=== metrics (prometheus) ===@.%s"
            (Obs.Export.prometheus obs);
          Format.printf "@.=== metrics (json) ===@.%s@."
            (Obs.Export.json_string obs)
        end;
        Option.iter
          (fun file ->
            let oc = open_out file in
            output_string oc (Obs.Export.json_string obs);
            output_char oc '\n';
            close_out oc;
            Format.printf "wrote %s@." file)
          metrics_json;
        Option.iter
          (fun file ->
            let oc = open_out file in
            output_string oc
              (Obs.Json.to_string ~pretty:true (Obs.Span.export spans));
            output_char oc '\n';
            close_out oc;
            Format.printf "wrote %d spans to %s@." (Obs.Span.count spans) file)
          spans_file;
        Option.iter
          (fun file ->
            let finished = Obs.Span.finished spans in
            let oc = open_out file in
            List.iter
              (fun sp ->
                output_string oc (Obs.Json.to_string (Obs.Span.to_json sp));
                output_char oc '\n')
              finished;
            close_out oc;
            Format.printf "wrote %d spans to %s (%d sampled out)@."
              (List.length finished) file
              (Obs.Span.sampled_out spans))
          trace_out;
        Option.iter
          (fun file -> write_json ~scenario:name ~file ~controllers network)
          json;
        0)
  in
  let cmd =
    Cmd.v
      (Cmd.info "netsim" ~doc:"Run a named ident++ simulation scenario")
      Term.(
        const run $ scenario $ topo $ pcap $ verbose $ json $ metrics
        $ metrics_json $ spans_file $ trace_out $ trace_sample $ extra_flow
        $ proactive $ fastpath $ attr_capacity $ attr_ttl $ decision_capacity
        $ breaker_threshold $ breaker_backoff $ shards $ health $ flight_out
        $ silence)
  in
  exit (Cmd.eval' cmd)

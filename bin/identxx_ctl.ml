(* identxx_ctl: command-line front end to the PF+=2 policy engine.

   Subcommands:
     check  validate .control files (parse + table resolution)
     fmt    parse and pretty-print a policy
     eval   decide a flow against a policy, with optional ident++
            key-value pairs for the source and destination ends

   Examples:
     identxx_ctl check policies/*.control
     identxx_ctl eval -p site.control \
        --flow "tcp 192.168.0.10:40000 -> 192.168.1.1:80" \
        --src name=skype --src version=210 --dst name=Server *)

open Cmdliner
module PS = Identxx_core.Policy_store
module D = Identxx_core.Decision

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* "tcp 1.2.3.4:500 -> 5.6.7.8:80" *)
let parse_flow s =
  let fail () =
    Error
      (Printf.sprintf
         "cannot parse flow %S (expected \"tcp A.B.C.D:SP -> E.F.G.H:DP\")" s)
  in
  match String.split_on_char ' ' (String.trim s) with
  | [ proto; src; "->"; dst ] -> (
      let split_hp hp =
        match String.rindex_opt hp ':' with
        | None -> None
        | Some i ->
            let host = String.sub hp 0 i in
            let port = String.sub hp (i + 1) (String.length hp - i - 1) in
            Option.bind (Netcore.Ipv4.of_string_opt host) (fun ip ->
                Option.map (fun p -> (ip, p)) (int_of_string_opt port))
      in
      match
        (Netcore.Proto.of_string_opt proto, split_hp src, split_hp dst)
      with
      | Some proto, Some (sip, sp), Some (dip, dp) ->
          Ok
            (Netcore.Five_tuple.make ~src:sip ~dst:dip ~proto ~src_port:sp
               ~dst_port:dp)
      | _ -> fail ())
  | _ -> fail ()

let parse_pairs kvs =
  List.map
    (fun kv ->
      match String.index_opt kv '=' with
      | None -> failwith (Printf.sprintf "bad key=value pair %S" kv)
      | Some i ->
          Identxx.Key_value.pair (String.sub kv 0 i)
            (String.sub kv (i + 1) (String.length kv - i - 1)))
    kvs

let load_policy files =
  let store = PS.create () in
  List.iter
    (fun path ->
      match PS.add store ~name:(Filename.basename path) (read_file path) with
      | Ok () -> ()
      | Error e -> failwith e)
    files;
  store

(* --- check --- *)

let check_cmd =
  let files = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE") in
  let run files =
    try
      let store = load_policy files in
      match PS.env store with
      | Ok env ->
          Printf.printf "OK: %d files, %d rules, tables: %s\n"
            (List.length (PS.files store))
            (List.length (Pf.Env.rules env))
            (String.concat ", " (Pf.Env.table_names env));
          0
      | Error e ->
          Printf.eprintf "error: %s\n" e;
          1
    with Failure e ->
      Printf.eprintf "error: %s\n" e;
      1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Validate .control policy files")
    Term.(const run $ files)

(* --- fmt --- *)

let fmt_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
    match Pf.Parser.parse (read_file file) with
    | Ok decls ->
        print_string (Pf.Pretty.ruleset decls);
        0
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        1
  in
  Cmd.v
    (Cmd.info "fmt" ~doc:"Parse and pretty-print a PF+=2 policy")
    Term.(const run $ file)

(* --- eval --- *)

let eval_cmd =
  let policies =
    Arg.(
      non_empty
      & opt_all file []
      & info [ "p"; "policy" ] ~docv:"FILE" ~doc:"Policy file (repeatable).")
  in
  let flow =
    Arg.(
      required
      & opt (some string) None
      & info [ "flow" ] ~docv:"FLOW"
          ~doc:"The flow, e.g. \"tcp 10.0.0.1:4000 -> 10.0.0.2:80\".")
  in
  let src_pairs =
    Arg.(
      value & opt_all string []
      & info [ "src" ] ~docv:"KEY=VALUE"
          ~doc:"ident++ pair reported by the flow's source (repeatable).")
  in
  let dst_pairs =
    Arg.(
      value & opt_all string []
      & info [ "dst" ] ~docv:"KEY=VALUE"
          ~doc:"ident++ pair reported by the flow's destination (repeatable).")
  in
  let default_block =
    Arg.(
      value & flag
      & info [ "default-block" ]
          ~doc:"Use a default-deny instead of PF's implicit pass.")
  in
  let trace_flag =
    Arg.(
      value & flag
      & info [ "trace" ] ~doc:"Show how every rule fared against the flow.")
  in
  let run policies flow src_pairs dst_pairs default_block trace_flag =
    try
      match parse_flow flow with
      | Error e ->
          Printf.eprintf "error: %s\n" e;
          1
      | Ok flow ->
          let store = load_policy policies in
          let decision =
            D.create
              ~default:(if default_block then Pf.Ast.Block else Pf.Ast.Pass)
              ~policy:store ()
          in
          let response pairs =
            match parse_pairs pairs with
            | [] -> None
            | section -> Some (Identxx.Response.make ~flow [ section ])
          in
          let input =
            {
              D.flow;
              src_response = response src_pairs;
              dst_response = response dst_pairs;
            }
          in
          if trace_flag then begin
            let env = PS.env_exn store in
            let ctx =
              Pf.Eval.ctx ?src:input.D.src_response ?dst:input.D.dst_response
                ~keystore:(D.keystore decision)
                ~functions:(D.functions decision) ()
            in
            match
              Pf.Eval.trace
                ~default:(if default_block then Pf.Ast.Block else Pf.Ast.Pass)
                env ctx input.D.flow
            with
            | Error e ->
                Printf.eprintf "error: %s\n" e;
                exit 1
            | Ok (steps, _) ->
                List.iter
                  (fun (s : Pf.Eval.trace_step) ->
                    Printf.printf "%s line %-3d %s\n"
                      (if s.Pf.Eval.decided then "=>"
                       else if s.Pf.Eval.matched then "* "
                       else "  ")
                      s.Pf.Eval.rule.Pf.Ast.line
                      (Pf.Pretty.rule s.Pf.Eval.rule))
                  steps
          end;
          print_endline (D.explain decision input);
          if D.allows decision input then 0 else 2
    with Failure e ->
      Printf.eprintf "error: %s\n" e;
      1
  in
  Cmd.v
    (Cmd.info "eval"
       ~doc:
         "Decide a flow against a policy (exit 0 = pass, 2 = block, 1 = error)")
    Term.(
      const run $ policies $ flow $ src_pairs $ dst_pairs $ default_block
      $ trace_flag)

(* --- daemon-check: lint ident++ daemon configuration files --- *)

let daemon_check_cmd =
  let files = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE") in
  let run files =
    let check_file path =
      match Identxx.Config.parse (read_file path) with
      | Error e ->
          Printf.eprintf "%s: %s\n" path e;
          false
      | Ok cfg ->
          let bad_reqs =
            List.filter_map
              (fun (block : Identxx.Config.app_block) ->
                match Identxx.Key_value.find block.pairs "requirements" with
                | None -> None
                | Some reqs -> (
                    match Pf.Parser.parse_rules reqs with
                    | Ok _ -> None
                    | Error e -> Some (block.path, e)))
              cfg.Identxx.Config.apps
          in
          List.iter
            (fun (app, e) ->
              Printf.eprintf "%s: @app %s: requirements do not parse: %s\n"
                path app e)
            bad_reqs;
          let unsigned =
            List.filter
              (fun (block : Identxx.Config.app_block) ->
                Identxx.Key_value.find block.pairs "requirements" <> None
                && Identxx.Key_value.find block.pairs "req-sig" = None)
              cfg.Identxx.Config.apps
          in
          List.iter
            (fun (block : Identxx.Config.app_block) ->
              Printf.printf
                "%s: warning: @app %s has requirements but no req-sig\n" path
                block.Identxx.Config.path)
            unsigned;
          if bad_reqs = [] then begin
            Printf.printf "%s: OK (%d global pairs, %d @app blocks)\n" path
              (List.length cfg.Identxx.Config.globals)
              (List.length cfg.Identxx.Config.apps);
            true
          end
          else false
    in
    let results = List.map check_file files in
    if List.for_all Fun.id results then 0 else 1
  in
  Cmd.v
    (Cmd.info "daemon-check"
       ~doc:"Validate ident++ daemon configuration files (@app blocks)")
    Term.(const run $ files)

(* --- matrix: batch decisions from a scenario file --- *)

let matrix_cmd =
  let policies =
    Arg.(
      non_empty & opt_all file []
      & info [ "p"; "policy" ] ~docv:"FILE" ~doc:"Policy file (repeatable).")
  in
  let scenario =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCENARIOS")
  in
  let run policies scenario =
    try
      let store = load_policy policies in
      let decision = D.create ~policy:store () in
      let lines =
        String.split_on_char '\n' (read_file scenario)
        |> List.mapi (fun i l -> (i + 1, String.trim l))
        |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
      in
      let failures = ref 0 in
      List.iter
        (fun (lineno, line) ->
          match String.split_on_char '|' line |> List.map String.trim with
          | [ flow_s; src_s; dst_s; expect_s ] -> (
              match parse_flow flow_s with
              | Error e -> failwith (Printf.sprintf "line %d: %s" lineno e)
              | Ok flow ->
                  let pairs s =
                    match
                      String.split_on_char ' ' s |> List.filter (( <> ) "")
                    with
                    | [] -> None
                    | kvs -> Some (Identxx.Response.make ~flow [ parse_pairs kvs ])
                  in
                  let input =
                    {
                      D.flow;
                      src_response = pairs src_s;
                      dst_response = pairs dst_s;
                    }
                  in
                  let got = if D.allows decision input then "pass" else "block" in
                  let ok = got = expect_s in
                  if not ok then incr failures;
                  Printf.printf "%-50s %-6s %-6s %s\n" flow_s expect_s got
                    (if ok then "ok" else "MISMATCH"))
          | _ ->
              failwith
                (Printf.sprintf
                   "line %d: expected 'flow | src pairs | dst pairs | pass/block'"
                   lineno))
        lines;
      if !failures = 0 then begin
        Printf.printf "all %d scenarios match\n" (List.length lines);
        0
      end
      else begin
        Printf.printf "%d mismatch(es)\n" !failures;
        2
      end
    with Failure e ->
      Printf.eprintf "error: %s\n" e;
      1
  in
  Cmd.v
    (Cmd.info "matrix"
       ~doc:
         "Decide a file of scenarios (flow | src pairs | dst pairs | \
          expectation) against a policy")
    Term.(const run $ policies $ scenario)

(* --- analyze: lint policies (cheap per-file checks, or the deep
   whole-ruleset flow-space analysis with --deep) --- *)

(* Daemon configuration files ride along on the analyze command line so
   the cross-config key check can tell which @src/@dst keys any daemon
   could ever answer. *)
let is_daemon_config path = Filename.check_suffix path ".conf"

let severity_count (findings : Analysis.Check.finding list) sev =
  List.length
    (List.filter (fun (f : Analysis.Check.finding) -> f.severity = sev) findings)

let analyze_deep policy_files config_files format =
  let named =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (List.map
         (fun path -> (Filename.basename path, read_file path))
         policy_files)
  in
  let configs =
    List.map
      (fun path ->
        match Identxx.Config.parse (read_file path) with
        | Ok cfg -> (Filename.basename path, cfg)
        | Error e ->
            Printf.eprintf "%s: %s\n" path e;
            exit 1)
      config_files
  in
  match Pf.Parser.parse (String.concat "\n" (List.map snd named)) with
  | Error e ->
      (* Parser errors carry the concatenated line number; map it back
         to the contributing file so multi-file reports stay usable. *)
      let e =
        match Scanf.sscanf_opt e "line %d:" (fun n -> n) with
        | Some n ->
            let file, local = Analysis.Report.locator named n in
            let colon = String.index e ':' in
            Printf.sprintf "%s: line %d:%s" file local
              (String.sub e (colon + 1) (String.length e - colon - 1))
        | None -> e
      in
      Printf.eprintf "error: %s\n" e;
      1
  | Ok decls ->
      let where line =
        let file, local = Analysis.Report.locator named line in
        Printf.sprintf "%s:%d" file local
      in
      let findings = Analysis.Check.run ~configs ~where decls in
      let located = Analysis.Report.locate named findings in
      (match format with
      | `Json -> print_endline (Analysis.Report.to_json located)
      | `Text ->
          List.iter
            (fun l -> print_endline (Analysis.Report.text_line l))
            located;
          Printf.printf "%d error(s), %d warning(s), %d info in %d file(s)\n"
            (severity_count findings Analysis.Check.Error)
            (severity_count findings Analysis.Check.Warning)
            (severity_count findings Analysis.Check.Info)
            (List.length named));
      Analysis.Report.exit_code findings

let analyze_shallow policy_files format =
  let findings =
    List.concat_map
      (fun path ->
        match Pf.Parser.parse (read_file path) with
        | Error e ->
            Printf.eprintf "%s: %s\n" path e;
            exit 1
        | Ok decls -> List.map (fun f -> (path, f)) (Pf.Lint.check decls))
      policy_files
  in
  match format with
  | `Json ->
      let located =
        List.map
          (fun (path, (f : Pf.Lint.finding)) ->
            {
              Analysis.Report.file = path;
              local_line = f.Pf.Lint.line;
              finding = Analysis.Check.of_lint f;
            })
          findings
      in
      print_endline (Analysis.Report.to_json located);
      if findings = [] then 0 else 2
  | `Text ->
      List.iter
        (fun (path, f) ->
          Printf.printf "%s: %s\n" path
            (Format.asprintf "%a" Pf.Lint.pp_finding f))
        findings;
      if findings = [] then begin
        Printf.printf "no findings in %d file(s)\n" (List.length policy_files);
        0
      end
      else 2

(* --- analyze equiv/diff/slice: decision-diagram semantics over whole
   policy sets (lib/analysis/fdd.mli). Each side of a comparison is a
   policy set in its own right: files are sorted by basename and
   concatenated exactly like the controller's well-known directory. *)

let load_policy_set files =
  let named =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (List.map (fun path -> (Filename.basename path, read_file path)) files)
  in
  match Pf.Env.of_string (String.concat "\n" (List.map snd named)) with
  | Ok env -> (named, Analysis.Fdd.compile env)
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1

let json_str s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* Deciding lines rendered fragment-aware: the concatenated line is
   mapped back to the contributing file, line 0 is the implicit
   default. *)
let line_ref named = function
  | 0 -> "default"
  | l ->
      let file, local = Analysis.Report.locator named l in
      Printf.sprintf "%s:%d" file local

let action_name = function Pf.Ast.Pass -> "pass" | Pf.Ast.Block -> "block"

let verdict_text named = function
  | Analysis.Fdd.Static { action; lines } ->
      Printf.sprintf "%s (%s)" (action_name action)
        (String.concat ", " (List.map (line_ref named) lines))
  | Analysis.Fdd.Reactive { lines; inputs; may_default } ->
      Printf.sprintf "reactive (%s; needs %s%s)"
        (String.concat ", " (List.map (line_ref named) lines))
        (match inputs with
        | [] -> "flow-time evaluation"
        | _ ->
            String.concat ", " (List.map Pf.Ast.cond_input_to_string inputs))
        (if may_default then "; may fall through to default" else "")

let verdict_json named = function
  | Analysis.Fdd.Static { action; lines } ->
      Printf.sprintf {|{"kind":"static","action":"%s","lines":[%s]}|}
        (action_name action)
        (String.concat ","
           (List.map (fun l -> json_str (line_ref named l)) lines))
  | Analysis.Fdd.Reactive { lines; inputs; may_default } ->
      Printf.sprintf
        {|{"kind":"reactive","lines":[%s],"inputs":[%s],"may_default":%b}|}
        (String.concat ","
           (List.map (fun l -> json_str (line_ref named l)) lines))
        (String.concat ","
           (List.map
              (fun i -> json_str (Pf.Ast.cond_input_to_string i))
              inputs))
        may_default

let region_fraction (rg : Analysis.Fdd.region) =
  let w top (lo, hi) = float_of_int (hi - lo + 1) /. float_of_int (top + 1) in
  w 255 rg.Analysis.Fdd.r_proto
  *. w 0xFFFF_FFFF rg.Analysis.Fdd.r_src
  *. w 0xFFFF_FFFF rg.Analysis.Fdd.r_dst
  *. w 0xFFFF rg.Analysis.Fdd.r_sport
  *. w 0xFFFF rg.Analysis.Fdd.r_dport

let analyze_format =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:"Output format: $(b,text) (default) or $(b,json).")

let old_set = Arg.(non_empty & pos_all file [] & info [] ~docv:"OLD")

let new_set =
  Arg.(
    non_empty & opt_all file []
    & info [ "against"; "B" ] ~docv:"NEW"
        ~doc:
          "File(s) of the policy set to compare against (repeatable; the \
           set is sorted and concatenated like the positional one).")

let analyze_equiv_cmd =
  let run old_files new_files format =
    let named_l, fl = load_policy_set old_files in
    let named_r, fr = load_policy_set new_files in
    match Analysis.Fdd.equiv fl fr with
    | Ok () ->
        (match format with
        | `Json ->
            print_endline
              (Printf.sprintf
                 {|{"equivalent":true,"nodes":{"old":%d,"new":%d}}|}
                 (Analysis.Fdd.node_count fl) (Analysis.Fdd.node_count fr))
        | `Text ->
            print_endline
              "equivalent: both policy sets decide every flow identically");
        0
    | Error { Analysis.Fdd.flow; left; right } ->
        (match format with
        | `Json ->
            print_endline
              (Printf.sprintf
                 {|{"equivalent":false,"counterexample":{"flow":%s,"old":%s,"new":%s}}|}
                 (json_str (Netcore.Five_tuple.to_string flow))
                 (verdict_json named_l left) (verdict_json named_r right))
        | `Text ->
            Printf.printf
              "not equivalent: counterexample %s\n  old: %s\n  new: %s\n"
              (Netcore.Five_tuple.to_string flow) (verdict_text named_l left)
              (verdict_text named_r right));
        2
  in
  Cmd.v
    (Cmd.info "equiv"
       ~doc:
         "Check two policy sets for semantic equivalence (exit 0 = \
          equivalent, 2 = a counterexample flow is reported, 1 = a set does \
          not compile)")
    Term.(const run $ old_set $ new_set $ analyze_format)

let analyze_diff_cmd =
  let limit =
    Arg.(
      value & opt int 16
      & info [ "limit" ] ~docv:"N"
          ~doc:"Maximum example regions to report (the fraction is exact).")
  in
  let run old_files new_files limit format =
    let named_l, fl = load_policy_set old_files in
    let named_r, fr = load_policy_set new_files in
    let r = Analysis.Fdd.diff ~limit fl fr in
    (match format with
    | `Json ->
        print_endline
          (Printf.sprintf
             {|{"changed_fraction":%.9g,"truncated":%b,"deltas":[%s]}|}
             r.Analysis.Fdd.changed_fraction r.Analysis.Fdd.truncated
             (String.concat ","
                (List.map
                   (fun (d : Analysis.Fdd.delta) ->
                     Printf.sprintf
                       {|{"region":%s,"old":%s,"new":%s}|}
                       (json_str (Analysis.Fdd.region_to_string d.d_region))
                       (verdict_json named_l d.d_left)
                       (verdict_json named_r d.d_right))
                   r.Analysis.Fdd.deltas)))
    | `Text ->
        Printf.printf "changed: %.9g of flow space\n"
          r.Analysis.Fdd.changed_fraction;
        List.iter
          (fun (d : Analysis.Fdd.delta) ->
            Printf.printf "%s\n  old: %s\n  new: %s\n"
              (Analysis.Fdd.region_to_string d.Analysis.Fdd.d_region)
              (verdict_text named_l d.Analysis.Fdd.d_left)
              (verdict_text named_r d.Analysis.Fdd.d_right))
          r.Analysis.Fdd.deltas;
        if r.Analysis.Fdd.truncated then
          Printf.printf "... (more changed regions, raise --limit)\n");
    0
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Report the exact flow space whose verdict differs between two \
          policy sets (exit 0; 1 = a set does not compile)")
    Term.(const run $ old_set $ new_set $ limit $ analyze_format)

let analyze_slice_cmd =
  let files = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE") in
  let limit =
    Arg.(
      value & opt int 4096
      & info [ "limit" ] ~docv:"N" ~doc:"Maximum regions to enumerate.")
  in
  let min_coverage =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-coverage" ] ~docv:"FRACTION"
          ~doc:
            "Fail (exit 1) when the statically decided fraction of flow \
             space falls below $(docv).")
  in
  let min_coverage_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "min-coverage-file" ] ~docv:"PATH"
          ~doc:
            "Read the $(b,--min-coverage) threshold from $(docv) (a single \
             float; takes precedence over the flag). This is the committed \
             regression gate the lint alias uses.")
  in
  let run files limit min_coverage min_coverage_file format =
    let named, fdd = load_policy_set files in
    let sl = Analysis.Fdd.static_slice ~limit fdd in
    let nodes = Analysis.Fdd.node_count fdd in
    (* Cross-fragment ownership: which fragment's rules decide each
       statically decided region. A region whose possible deciders span
       several files is "shared"; one decided only by the implicit
       default is "default". *)
    let buckets = Hashtbl.create 8 in
    List.iter
      (fun ((rg : Analysis.Fdd.region), _action, lines) ->
        let owners =
          List.sort_uniq String.compare
            (List.map
               (fun l ->
                 if l = 0 then "default"
                 else fst (Analysis.Report.locator named l))
               lines)
        in
        let owner = match owners with [ o ] -> o | _ -> "shared" in
        let prev = try Hashtbl.find buckets owner with Not_found -> 0.0 in
        Hashtbl.replace buckets owner (prev +. region_fraction rg))
      sl.Analysis.Fdd.s_static;
    let ownership =
      List.sort
        (fun (na, fa) (nb, fb) ->
          match compare (fb : float) fa with
          | 0 -> String.compare na nb
          | c -> c)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) buckets [])
    in
    (match format with
    | `Json ->
        print_endline
          (Printf.sprintf
             {|{"nodes":%d,"static_coverage":%.9g,"truncated":%b,"ownership":[%s],"static":[%s],"reactive":[%s]}|}
             nodes sl.Analysis.Fdd.s_coverage sl.Analysis.Fdd.s_truncated
             (String.concat ","
                (List.map
                   (fun (owner, f) ->
                     Printf.sprintf {|{"owner":%s,"fraction":%.9g}|}
                       (json_str owner) f)
                   ownership))
             (String.concat ","
                (List.map
                   (fun (rg, action, lines) ->
                     Printf.sprintf
                       {|{"region":%s,"action":"%s","lines":[%s]}|}
                       (json_str (Analysis.Fdd.region_to_string rg))
                       (action_name action)
                       (String.concat ","
                          (List.map
                             (fun l -> json_str (line_ref named l))
                             lines)))
                   sl.Analysis.Fdd.s_static))
             (String.concat ","
                (List.map
                   (fun (rg, (r : Analysis.Fdd.reason)) ->
                     Printf.sprintf
                       {|{"region":%s,"lines":[%s],"inputs":[%s],"may_default":%b}|}
                       (json_str (Analysis.Fdd.region_to_string rg))
                       (String.concat ","
                          (List.map
                             (fun l -> json_str (line_ref named l))
                             r.Analysis.Fdd.lines))
                       (String.concat ","
                          (List.map
                             (fun i ->
                               json_str (Pf.Ast.cond_input_to_string i))
                             r.Analysis.Fdd.inputs))
                       r.Analysis.Fdd.may_default)
                   sl.Analysis.Fdd.s_reactive)))
    | `Text ->
        Printf.printf "nodes: %d\nstatic coverage: %.9g%s\n" nodes
          sl.Analysis.Fdd.s_coverage
          (if sl.Analysis.Fdd.s_truncated then " (region list truncated)"
           else "");
        if ownership <> [] then begin
          print_endline "ownership of statically decided flow space:";
          List.iter
            (fun (owner, f) -> Printf.printf "  %-28s %.9g\n" owner f)
            ownership
        end;
        List.iter
          (fun (rg, action, lines) ->
            Printf.printf "static %s: %s (%s)\n" (action_name action)
              (Analysis.Fdd.region_to_string rg)
              (String.concat ", " (List.map (line_ref named) lines)))
          sl.Analysis.Fdd.s_static;
        List.iter
          (fun (rg, (r : Analysis.Fdd.reason)) ->
            Printf.printf "reactive: %s (%s; needs %s%s)\n"
              (Analysis.Fdd.region_to_string rg)
              (String.concat ", "
                 (List.map (line_ref named) r.Analysis.Fdd.lines))
              (match r.Analysis.Fdd.inputs with
              | [] -> "flow-time evaluation"
              | inputs ->
                  String.concat ", "
                    (List.map Pf.Ast.cond_input_to_string inputs))
              (if r.Analysis.Fdd.may_default then
                 "; may fall through to default"
               else ""))
          sl.Analysis.Fdd.s_reactive);
    let threshold =
      match min_coverage_file with
      | Some path -> (
          match float_of_string_opt (String.trim (read_file path)) with
          | Some f -> Some f
          | None ->
              Printf.eprintf "error: %s does not contain a float\n" path;
              exit 1)
      | None -> min_coverage
    in
    match threshold with
    | Some th when sl.Analysis.Fdd.s_coverage < th ->
        Printf.eprintf
          "error: static coverage %.9g regressed below threshold %.9g\n"
          sl.Analysis.Fdd.s_coverage th;
        1
    | _ -> 0
  in
  Cmd.v
    (Cmd.info "slice"
       ~doc:
         "Split a policy set into its statically decided flow space (the \
          proactive flow-table slice) and the reactive residue, with \
          per-fragment ownership (exit 1 = compile failure or coverage \
          below the committed threshold)")
    Term.(
      const run $ files $ limit $ min_coverage $ min_coverage_file
      $ analyze_format)

let analyze_cmd =
  let files = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE") in
  let deep =
    Arg.(
      value & flag
      & info [ "deep" ]
          ~doc:
            "Run the whole-ruleset flow-space analysis (shadowing, \
             conflicts, undefined references, cross-config keys, default \
             fallthrough) over the alphabetical concatenation of the \
             $(i,.control) files, treating $(i,*.conf) arguments as ident++ \
             daemon configurations. Exit 1 iff error-severity findings.")
  in
  let run files deep format =
    let config_files, policy_files = List.partition is_daemon_config files in
    if policy_files = [] then begin
      Printf.eprintf "error: no policy files given\n";
      1
    end
    else if deep then analyze_deep policy_files config_files format
    else begin
      List.iter
        (fun path ->
          Printf.eprintf "warning: %s ignored without --deep\n" path)
        config_files;
      analyze_shallow policy_files format
    end
  in
  let lint_cmd =
    Cmd.v
      (Cmd.info "lint"
         ~doc:
           "Lint policies (default: cheap per-file checks; --deep: symbolic \
            flow-space analysis of the whole ruleset). This is the default \
            subcommand: $(b,analyze FILE...) routes here.")
      Term.(const run $ files $ deep $ analyze_format)
  in
  Cmd.group
    (Cmd.info "analyze"
       ~doc:
         "Lint policies (lint, the default) or run decision-diagram \
          semantics over whole policy sets (equiv/diff/slice)")
    [ lint_cmd; analyze_equiv_cmd; analyze_diff_cmd; analyze_slice_cmd ]

(* --- compile: lower a policy set's static slice into the
   priority-ordered wildcard table the proactive controller installs
   (lib/compiler/compiler.mli) --- *)

let compile_cmd =
  let files = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE") in
  let max_entries =
    Arg.(
      value
      & opt int Compiler.default_max_entries
      & info [ "max-entries" ] ~docv:"N"
          ~doc:
            "Table-size budget: when the lowered table exceeds $(docv) \
             entries, the lowest-priority tail is replaced by one \
             punt-to-controller entry (sound, slower).")
  in
  let region_budget =
    Arg.(
      value
      & opt int Compiler.default_region_budget
      & info [ "region-budget" ] ~docv:"N"
          ~doc:
            "Per-branch expansion cap: a branch whose exact expansion \
             (ports and protocols enumerate; OpenFlow 1.0 has no port \
             masks) would need more than $(docv) entries spills back to \
             the reactive path.")
  in
  let max_entries_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "max-entries-file" ] ~docv:"PATH"
          ~doc:
            "Read the $(b,--max-entries) gate from $(docv) (a single \
             integer) and fail (exit 1) when the compiled entry count \
             exceeds it. This is the committed table-size budget the lint \
             alias enforces.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Translation validation: check the compiled table's decision \
             against the decision diagram's verdict on a witness flow of \
             every enumerated region (exit 1 on any disagreement).")
  in
  let run files max_entries region_budget max_entries_file verify format =
    let named, fdd = load_policy_set files in
    let tbl =
      try Compiler.compile ~max_entries ~region_budget fdd
      with Invalid_argument e ->
        Printf.eprintf "error: %s\n" e;
        exit 1
    in
    let checked =
      if not verify then None
      else
        match Compiler.verify tbl fdd with
        | Ok n -> Some n
        | Error e ->
            Printf.eprintf "error: translation validation failed: %s\n" e;
            exit 1
    in
    let entry_lines (e : Compiler.entry) =
      List.map (line_ref named) e.Compiler.e_lines
    in
    let n_entries = List.length tbl.Compiler.entries in
    (match format with
    | `Json ->
        print_endline
          (Printf.sprintf
             {|{"entries":[%s],"spills":[%s],"static_coverage":%.9g,"installed_coverage":%.9g,"truncated":%b%s}|}
             (String.concat ","
                (List.map
                   (fun (e : Compiler.entry) ->
                     Printf.sprintf
                       {|{"priority":%d,"decision":"%s","match":%s,"lines":[%s]}|}
                       e.Compiler.e_priority
                       (Compiler.decision_to_string e.Compiler.e_decision)
                       (json_str (Compiler.fields_to_string e.Compiler.e_fields))
                       (String.concat "," (List.map json_str (entry_lines e))))
                   tbl.Compiler.entries))
             (String.concat ","
                (List.map
                   (fun (s : Compiler.spill) ->
                     Printf.sprintf
                       {|{"dim":"%s","interval":[%d,%d],"cost":%d}|}
                       s.Compiler.sp_dim (fst s.Compiler.sp_interval)
                       (snd s.Compiler.sp_interval) s.Compiler.sp_cost)
                   tbl.Compiler.spills))
             tbl.Compiler.static_coverage tbl.Compiler.installed_coverage
             tbl.Compiler.truncated
             (match checked with
             | None -> ""
             | Some n -> Printf.sprintf {|,"verified_regions":%d|} n))
    | `Text ->
        Printf.printf
          "entries: %d\nstatic coverage: %.9g\ninstalled coverage: %.9g\n"
          n_entries tbl.Compiler.static_coverage tbl.Compiler.installed_coverage;
        if tbl.Compiler.truncated then
          Printf.printf
            "truncated: table exceeded %d entries; tail punts to the \
             controller\n"
            max_entries;
        List.iter
          (fun (s : Compiler.spill) ->
            Printf.printf
              "spill: %s interval [%d,%d] would need %d entries (budget \
               %d); region stays reactive\n"
              s.Compiler.sp_dim (fst s.Compiler.sp_interval)
              (snd s.Compiler.sp_interval) s.Compiler.sp_cost region_budget)
          tbl.Compiler.spills;
        List.iter
          (fun (e : Compiler.entry) ->
            Printf.printf "%5d %-5s %s%s\n" e.Compiler.e_priority
              (Compiler.decision_to_string e.Compiler.e_decision)
              (Compiler.fields_to_string e.Compiler.e_fields)
              (match entry_lines e with
              | [] -> ""
              | ls -> Printf.sprintf "  (%s)" (String.concat ", " ls)))
          tbl.Compiler.entries;
        match checked with
        | None -> ()
        | Some n -> Printf.printf "verified: %d regions agree\n" n);
    let budget =
      match max_entries_file with
      | None -> None
      | Some path -> (
          match int_of_string_opt (String.trim (read_file path)) with
          | Some n -> Some n
          | None ->
              Printf.eprintf "error: %s does not contain an integer\n" path;
              exit 1)
    in
    match budget with
    | Some b when n_entries > b ->
        Printf.eprintf
          "error: compiled table has %d entries, committed budget is %d\n"
          n_entries b;
        1
    | _ -> 0
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Lower a policy set's static slice into the priority-ordered \
          wildcard flow-table the proactive controller installs (netsim \
          --proactive), with range-to-prefix expansion, spillover back to \
          the reactive path, and optional translation validation (exit 1 = \
          compile failure, validation failure, or entry count over the \
          committed budget)")
    Term.(
      const run $ files $ max_entries $ region_budget $ max_entries_file
      $ verify $ analyze_format)

(* --- metrics: read back a JSON snapshot (netsim --metrics-json,
   identxxd --metrics) and re-render it --- *)

let metrics_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SNAPSHOT")
  in
  let format =
    Arg.(
      value
      & opt
          (enum [ ("prom", `Prom); ("json", `Json); ("summary", `Summary) ])
          `Prom
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format: $(b,prom) (default, Prometheus text exposition), \
             $(b,json) (the snapshot, reparsed and pretty-printed), or \
             $(b,summary) (one line per series).")
  in
  let labels_str labels =
    match labels with
    | [] -> ""
    | labels ->
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)
        ^ "}"
  in
  let run file format =
    match Obs.Json.of_string (read_file file) with
    | Error e ->
        Printf.eprintf "error: %s: %s\n" file e;
        1
    | Ok v -> (
        match Obs.Export.of_json v with
        | Error e ->
            Printf.eprintf "error: %s: %s\n" file e;
            1
        | Ok series ->
            (match format with
            | `Prom -> print_string (Obs.Export.prometheus_of_series series)
            | `Json -> print_endline (Obs.Json.to_string ~pretty:true v)
            | `Summary ->
                (* Group by label vector, not by name: with per-entity
                   labels (shard=, host=, dpid=) this renders one block
                   per entity instead of interleaving entities inside
                   every metric name. *)
                let series =
                  List.stable_sort
                    (fun (a : Obs.Registry.series) (b : Obs.Registry.series) ->
                      match
                        compare a.Obs.Registry.labels b.Obs.Registry.labels
                      with
                      | 0 -> compare a.Obs.Registry.name b.Obs.Registry.name
                      | c -> c)
                    series
                in
                List.iter
                  (fun (s : Obs.Registry.series) ->
                    let name = s.Obs.Registry.name ^ labels_str s.Obs.Registry.labels in
                    match s.Obs.Registry.value with
                    | Obs.Registry.Counter_v c ->
                        Printf.printf "counter   %s = %d\n" name c
                    | Obs.Registry.Gauge_v g ->
                        Printf.printf "gauge     %s = %g\n" name g
                    | Obs.Registry.Histogram_v { buckets; sum; count } ->
                        (* Quantiles estimated from the bucket counts
                           (Prometheus-style interpolation), so operators
                           get p50/p95/p99 without the Prometheus path. *)
                        if count = 0 then
                          Printf.printf "histogram %s count=%d sum=%g\n" name
                            count sum
                        else
                          let q p =
                            match
                              Obs.Registry.estimate_quantile ~buckets ~count p
                            with
                            | Some v -> Printf.sprintf "%g" v
                            | None -> "-"
                          in
                          Printf.printf
                            "histogram %s count=%d sum=%g p50=%s p95=%s p99=%s\n"
                            name count sum (q 0.5) (q 0.95) (q 0.99))
                  series);
            0)
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Validate a JSON metrics snapshot and re-render it (exit 1 on \
          parse or schema errors)")
    Term.(const run $ file $ format)

(* --- trace: render exported spans (netsim --spans / --trace-out) as an
   indented per-flow timing tree --- *)

let trace_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"SPANS") in
  (* Span times are float seconds; the interesting magnitudes are
     microseconds, and %g keeps them short and byte-stable. *)
  let us f = f *. 1e6 in
  let j_str k v = Option.bind (Obs.Json.member k v) Obs.Json.to_str in
  let j_num k v = Option.bind (Obs.Json.member k v) Obs.Json.to_float in
  let j_list k v =
    match Obs.Json.member k v with Some l -> Obs.Json.to_list l | None -> []
  in
  let j_attrs v =
    match Obs.Json.member "attrs" v with
    | Some (Obs.Json.Obj kvs) ->
        List.filter_map
          (fun (k, av) -> Option.map (fun s -> (k, s)) (Obs.Json.to_str av))
          kvs
    | _ -> []
  in
  let pp_attrs b attrs =
    List.iter (fun (k, v) -> Printf.bprintf b " %s=%s" k v) attrs
  in
  let rec pp_span b indent v =
    let name = Option.value ~default:"?" (j_str "name" v) in
    let start = Option.value ~default:0. (j_num "start" v) in
    let children = j_list "children" v in
    Printf.bprintf b "%s%s @%gus" indent name (us start);
    (match j_num "end" v with
    | Some e ->
        let d = e -. start in
        Printf.bprintf b " +%gus" (us d);
        (* Self time: the span's duration not covered by its children —
           where this hop itself spent the flow's setup budget. *)
        if children <> [] then begin
          let child_time =
            List.fold_left
              (fun acc c ->
                match (j_num "start" c, j_num "end" c) with
                | Some s, Some e -> acc +. (e -. s)
                | _ -> acc)
              0. children
          in
          Printf.bprintf b " (self %gus)" (us (Float.max 0. (d -. child_time)))
        end
    | None -> Printf.bprintf b " (unfinished)");
    pp_attrs b (j_attrs v);
    Buffer.add_char b '\n';
    List.iter
      (fun ev ->
        let ename = Option.value ~default:"?" (j_str "name" ev) in
        let eat = Option.value ~default:0. (j_num "at" ev) in
        Printf.bprintf b "%s  - %s @%gus" indent ename (us eat);
        pp_attrs b (j_attrs ev);
        Buffer.add_char b '\n')
      (j_list "events" v);
    List.iter (pp_span b (indent ^ "  ")) children
  in
  let run file =
    let content = read_file file in
    (* Two on-disk shapes: the {"spans": [...], ...} object written by
       netsim --spans, or JSON Lines (one span object per line) written
       by netsim --trace-out. *)
    let parsed =
      match Obs.Json.of_string content with
      | Ok v -> (
          match Obs.Json.member "spans" v with
          | Some spans -> Ok (Obs.Json.to_list spans, Some v)
          | None -> Ok ([ v ], None))
      | Error _ -> (
          let lines =
            String.split_on_char '\n' content
            |> List.filter (fun l -> String.trim l <> "")
          in
          let rec parse acc = function
            | [] -> Ok (List.rev acc, None)
            | l :: rest -> (
                match Obs.Json.of_string l with
                | Ok v -> parse (v :: acc) rest
                | Error e -> Error e)
          in
          parse [] lines)
    in
    match parsed with
    | Error e ->
        Printf.eprintf "error: %s: %s\n" file e;
        1
    | Ok (spans, header) ->
        let b = Buffer.create 1024 in
        List.iter (pp_span b "") spans;
        Printf.bprintf b "%d trace(s)" (List.length spans);
        (match header with
        | Some v ->
            let n k =
              match Option.bind (Obs.Json.member k v) Obs.Json.to_int with
              | Some n -> n
              | None -> 0
            in
            Printf.bprintf b ", %d dropped (capacity), %d sampled out"
              (n "dropped") (n "sampled_out")
        | None -> ());
        Buffer.add_char b '\n';
        print_string (Buffer.contents b);
        0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Render exported flow-setup spans (netsim --spans or --trace-out) \
          as an indented timing tree with self-times")
    Term.(const run $ file)

(* --- health: the rule registry and flight-recorder dump renderer --- *)

let health_cmd =
  let file = Arg.(value & pos 0 (some file) None & info [] ~docv:"DUMP") in
  let rules =
    Arg.(
      value & flag
      & info [ "rules" ]
          ~doc:
            "List the health rule registry (name, detection kind, watched \
             metric, grouping) instead of rendering a dump.")
  in
  let us f = f *. 1e6 in
  let j_str k v = Option.bind (Obs.Json.member k v) Obs.Json.to_str in
  let j_num k v = Option.bind (Obs.Json.member k v) Obs.Json.to_float in
  let print_rules () =
    List.iter
      (fun (r : Obs.Health.rule) ->
        Printf.printf "%s: %s on %s%s\n    %s\n" r.Obs.Health.r_name
          (Obs.Health.kind_to_string r.Obs.Health.r_kind)
          r.Obs.Health.r_metric
          (match r.Obs.Health.r_group_by with
          | [] -> ""
          | by -> " by " ^ String.concat "," by)
          r.Obs.Health.r_help)
      Obs.Health.default_rules
  in
  let render_dump file =
    let lines =
      String.split_on_char '\n' (read_file file)
      |> List.filter (fun l -> String.trim l <> "")
    in
    let rec parse acc = function
      | [] -> Ok (List.rev acc)
      | l :: rest -> (
          match Obs.Json.of_string l with
          | Ok v -> parse (v :: acc) rest
          | Error e -> Error e)
    in
    match parse [] lines with
    | Error e ->
        Printf.eprintf "error: %s: %s\n" file e;
        1
    | Ok [] ->
        Printf.eprintf "error: %s: empty dump\n" file;
        1
    | Ok (header :: events) ->
        (match j_str "kind" header with
        | Some "flight-recorder" -> ()
        | _ ->
            Printf.eprintf "error: %s: not a flight-recorder dump\n" file;
            exit 1);
        let reason = Option.value ~default:"?" (j_str "reason" header) in
        let at = Option.value ~default:0. (j_num "at" header) in
        let dropped = Option.value ~default:0. (j_num "dropped" header) in
        Printf.printf "flight recorder: %d events (%g dropped) dumped @%gus\n"
          (List.length events) dropped (us at);
        let is_rule =
          List.exists
            (fun (r : Obs.Health.rule) -> r.Obs.Health.r_name = reason)
            Obs.Health.default_rules
        in
        Printf.printf "%s: %s\n"
          (if is_rule then "trigger (health rule)" else "reason")
          reason;
        (* Per-kind totals, then the timeline itself (events arrive in
           canonical (at, kind, attrs) order from the dumper). *)
        let kinds = Hashtbl.create 8 in
        List.iter
          (fun ev ->
            let k = Option.value ~default:"?" (j_str "kind" ev) in
            Hashtbl.replace kinds k
              (1 + Option.value ~default:0 (Hashtbl.find_opt kinds k)))
          events;
        let counts =
          Hashtbl.fold (fun k n acc -> (k, n) :: acc) kinds []
          |> List.sort compare
        in
        Printf.printf "by kind:%s\n"
          (String.concat ""
             (List.map (fun (k, n) -> Printf.sprintf " %s=%d" k n) counts));
        List.iter
          (fun ev ->
            let k = Option.value ~default:"?" (j_str "kind" ev) in
            let eat = Option.value ~default:0. (j_num "at" ev) in
            Printf.printf "  @%gus %s" (us eat) k;
            (match Obs.Json.member "attrs" ev with
            | Some (Obs.Json.Obj kvs) ->
                List.iter
                  (fun (ak, av) ->
                    match Obs.Json.to_str av with
                    | Some s -> Printf.printf " %s=%s" ak s
                    | None -> ())
                  kvs
            | _ -> ());
            print_newline ())
          events;
        0
  in
  let run file rules =
    if rules then begin
      print_rules ();
      0
    end
    else
      match file with
      | Some f -> render_dump f
      | None ->
          Printf.eprintf "error: health needs a DUMP file (or --rules)\n";
          1
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Render a flight-recorder dump (netsim --flight-out) as an event \
          timeline, or list the health rule registry with --rules")
    Term.(const run $ file $ rules)

(* --- signing workflow: keygen / sign / verify ---
   The delegation figures need requirements signed by a principal whose
   public handle appears in a controller dict. These commands drive the
   simulated-PKI scheme (see DESIGN.md section 2) from the shell. *)

let keygen_cmd =
  let owner = Arg.(required & pos 0 (some string) None & info [] ~docv:"OWNER") in
  let seed =
    Arg.(
      value
      & opt (some string) None
      & info [ "seed" ] ~docv:"SEED" ~doc:"Derivation seed (deterministic).")
  in
  let run owner seed =
    let kp = Idcrypto.Sign.generate ?seed owner in
    Printf.printf "owner:  %s\npublic: %s\nsecret: %s\n" kp.Idcrypto.Sign.owner
      kp.Idcrypto.Sign.public kp.Idcrypto.Sign.secret;
    0
  in
  Cmd.v
    (Cmd.info "keygen" ~doc:"Derive a deterministic keypair for a principal")
    Term.(const run $ owner $ seed)

let sign_cmd =
  let secret =
    Arg.(
      required
      & opt (some string) None
      & info [ "secret" ] ~docv:"SECRET" ~doc:"The signer's secret.")
  in
  let data = Arg.(non_empty & pos_all string [] & info [] ~docv:"DATA") in
  let run secret data =
    print_endline (Idcrypto.Sign.sign ~secret data);
    0
  in
  Cmd.v
    (Cmd.info "sign"
       ~doc:"Sign a data list (e.g. exe-hash app-name requirements) -> req-sig")
    Term.(const run $ secret $ data)

let verify_cmd =
  let public =
    Arg.(
      required
      & opt (some string) None
      & info [ "public" ] ~docv:"PUBLIC" ~doc:"The signer's public handle.")
  in
  let secret =
    Arg.(
      required
      & opt (some string) None
      & info [ "secret" ] ~docv:"SECRET"
          ~doc:
            "Verification material for the handle (the simulated PKI's \
             keystore entry).")
  in
  let signature =
    Arg.(
      required
      & opt (some string) None
      & info [ "signature" ] ~docv:"SIG" ~doc:"The tag to check.")
  in
  let data = Arg.(non_empty & pos_all string [] & info [] ~docv:"DATA") in
  let run public secret signature data =
    let ks = Idcrypto.Sign.keystore () in
    Idcrypto.Sign.register_public ks ~public ~secret;
    if Idcrypto.Sign.verify ks ~public ~signature data then begin
      print_endline "valid";
      0
    end
    else begin
      print_endline "INVALID";
      2
    end
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Verify a signature (exit 0 = valid, 2 = invalid)")
    Term.(const run $ public $ secret $ signature $ data)

let () =
  let info =
    Cmd.info "identxx_ctl" ~version:"1.0.0"
      ~doc:"ident++ / PF+=2 policy toolkit"
  in
  (* [analyze FILE...] predates the analyze subcommands; route anything
     that is not one of them to [analyze lint] so existing invocations
     keep working. *)
  let argv =
    let v = Sys.argv in
    if
      Array.length v > 1
      && v.(1) = "analyze"
      && (Array.length v = 2
         || not
              (List.mem v.(2)
                 [ "equiv"; "diff"; "slice"; "lint"; "--help"; "--version" ]))
    then
      Array.concat
        [ [| v.(0); "analyze"; "lint" |]; Array.sub v 2 (Array.length v - 2) ]
    else v
  in
  exit
    (Cmd.eval' ~argv
       (Cmd.group info
          [
            check_cmd; fmt_cmd; eval_cmd; daemon_check_cmd; analyze_cmd;
            compile_cmd; matrix_cmd; metrics_cmd; trace_cmd; health_cmd;
            keygen_cmd; sign_cmd; verify_cmd;
          ]))

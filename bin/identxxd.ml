(* identxxd: the ident++ end-host daemon as a standalone filter.

   Reads daemon configuration files (Figure 3/4/6 syntax) and a process
   table fixture, then answers ident++ query payloads (§3.2) read from
   stdin, one response per query, separated by a blank line — the exact
   bytes a TCP server on port 783 would write.

   The process table fixture is one line per socket:
     conn   <pid> <user> <groups,comma> <exe> <proto> <src:port> <dst:port>
     listen <pid> <user> <groups,comma> <exe> <proto> <port>

   Example:
     identxxd --ip 10.0.0.1 --config skype.identxx.conf --table procs.txt \
        < queries.txt *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_endpoint s =
  match String.rindex_opt s ':' with
  | None -> failwith ("bad endpoint " ^ s)
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match (Netcore.Ipv4.of_string_opt host, int_of_string_opt port) with
      | Some ip, Some p -> (ip, p)
      | _ -> failwith ("bad endpoint " ^ s))

let load_table processes content =
  let pids = Hashtbl.create 16 in
  let ensure_proc ~pid ~user ~groups ~exe =
    if not (Hashtbl.mem pids pid) then begin
      ignore
        (Identxx.Process_table.spawn processes ~pid ~user
           ~groups:(String.split_on_char ',' groups)
           ~exe ());
      Hashtbl.add pids pid ()
    end
  in
  String.split_on_char '\n' content
  |> List.iteri (fun lineno line ->
         let line = String.trim line in
         if line <> "" && line.[0] <> '#' then
           match String.split_on_char ' ' line |> List.filter (( <> ) "") with
           | [ "conn"; pid; user; groups; exe; proto; src; dst ] ->
               let pid = int_of_string pid in
               ensure_proc ~pid ~user ~groups ~exe;
               let src_ip, src_port = parse_endpoint src in
               let dst_ip, dst_port = parse_endpoint dst in
               Identxx.Process_table.connect processes ~pid
                 ~flow:
                   (Netcore.Five_tuple.make ~src:src_ip ~dst:dst_ip
                      ~proto:(Netcore.Proto.of_string proto)
                      ~src_port ~dst_port)
           | [ "listen"; pid; user; groups; exe; proto; port ] ->
               let pid = int_of_string pid in
               ensure_proc ~pid ~user ~groups ~exe;
               Identxx.Process_table.listen processes ~pid
                 ~proto:(Netcore.Proto.of_string proto)
                 ~port:(int_of_string port)
           | _ -> failwith (Printf.sprintf "table line %d: unparsable" (lineno + 1)))

let run ip configs table_path peer cache_expires metrics_path metrics_every
    health_every =
  let host_ip = Netcore.Ipv4.of_string ip in
  let peer_ip = Netcore.Ipv4.of_string peer in
  let processes = Identxx.Process_table.create () in
  (match table_path with
  | Some path -> load_table processes (read_file path)
  | None -> ());
  let hashes = Hashtbl.create 4 in
  let daemon =
    Identxx.Daemon.create ~ip:host_ip ~processes
      ~exe_hash:(fun p -> Hashtbl.find_opt hashes p)
      ()
  in
  List.iter
    (fun path ->
      match
        Identxx.Daemon.load_config daemon ~name:(Filename.basename path)
          (read_file path)
      with
      | Ok () -> ()
      | Error e -> failwith e)
    configs;
  (* The daemon-side cache knob: an [expires] pair in every answer caps
     how long a querier's attribute cache may reuse it (0 forbids
     caching outright). Loaded last so it wins latest-pair lookups even
     when a --config file also sets one. *)
  (match cache_expires with
  | None -> ()
  | Some seconds -> (
      match
        Identxx.Daemon.load_config daemon ~name:"zz-cache-expires"
          (Printf.sprintf "expires : %g" seconds)
      with
      | Ok () -> ()
      | Error e -> failwith e));
  (* Metrics: record service time on the wall clock and dump a JSON
     snapshot (identxx_ctl metrics reads it) every N queries and at
     EOF. *)
  let obs = Obs.Registry.create () in
  if metrics_path <> None || health_every > 0 then
    Identxx.Daemon.set_metrics daemon ~clock:Sys.time
      ~labels:[ ("host", ip) ]
      obs;
  (* The health engine closes a window every --health-every queries on
     the wall clock (the netsim twin closes on the simulated clock);
     fired events print to stderr as JSON lines, keeping stdout pure
     response bytes. *)
  let health =
    if health_every > 0 then
      Some
        (Obs.Health.create ~registry:obs
           (Obs.Window.create ~interval:1. ~now:(Sys.time ()) obs))
    else None
  in
  let health_step () =
    match health with
    | None -> ()
    | Some h ->
        List.iter
          (fun e ->
            output_string stderr
              (Obs.Json.to_string (Obs.Health.event_to_json e));
            output_char stderr '\n';
            flush stderr)
          (Obs.Health.force_step h ~now:(Sys.time ()))
  in
  let dump_metrics () =
    match metrics_path with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Obs.Export.json_string obs);
        output_char oc '\n';
        close_out oc
  in
  let seen = ref 0 in
  (* Read query payloads: header line + key lines, terminated by a blank
     line or EOF. *)
  let buf = Buffer.create 128 in
  let answer () =
    let payload = Buffer.contents buf in
    Buffer.clear buf;
    if String.trim payload <> "" then begin
      let clock = Identxx.Daemon.clock daemon in
      let d0 = clock () in
      (match Identxx.Query.decode payload with
      | Error e -> Printf.printf "error: %s\n\n%!" e
      | Ok q -> (
          let d1 = clock () in
          match
            Identxx.Daemon.answer ?trace:q.Identxx.Query.trace ~decode:(d0, d1)
              daemon ~peer:peer_ip ~proto:q.Identxx.Query.proto
              ~src_port:q.Identxx.Query.src_port
              ~dst_port:q.Identxx.Query.dst_port ~keys:q.Identxx.Query.keys
          with
          | Some (response, _role) ->
              print_string (Identxx.Response.encode response);
              print_newline ();
              flush stdout
          | None -> print_string "\n"));
      incr seen;
      if metrics_every > 0 && !seen mod metrics_every = 0 then dump_metrics ();
      if health_every > 0 && !seen mod health_every = 0 then health_step ()
    end
  in
  (try
     while true do
       let line = input_line stdin in
       if String.trim line = "" then answer ()
       else begin
         Buffer.add_string buf line;
         Buffer.add_char buf '\n'
       end
     done
   with End_of_file -> answer ());
  health_step ();
  dump_metrics ();
  0

let () =
  let ip =
    Arg.(
      required
      & opt (some string) None
      & info [ "ip" ] ~docv:"ADDR" ~doc:"This host's address.")
  in
  let configs =
    Arg.(
      value & opt_all file []
      & info [ "config" ] ~docv:"FILE" ~doc:"Daemon configuration (repeatable).")
  in
  let table =
    Arg.(
      value
      & opt (some file) None
      & info [ "table" ] ~docv:"FILE" ~doc:"Process table fixture.")
  in
  let peer =
    Arg.(
      value & opt string "0.0.0.0"
      & info [ "peer" ] ~docv:"ADDR"
          ~doc:"The flow's far end (the querying side's address).")
  in
  let cache_expires =
    Arg.(
      value
      & opt (some float) None
      & info [ "cache-expires" ] ~docv:"SECONDS"
          ~doc:"Stamp every answer with an 'expires' pair bounding how long \
                the controller's attribute cache may reuse it (0 disables \
                caching of this host's answers).")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Record daemon metrics (queries by outcome, service-time \
                histogram, signed responses) and write a JSON snapshot to \
                FILE at exit; readable with identxx_ctl metrics.")
  in
  let metrics_every =
    Arg.(
      value & opt int 0
      & info [ "metrics-every" ] ~docv:"N"
          ~doc:"With --metrics, also rewrite the snapshot after every N \
                queries (0 = only at exit) — the periodic dump for \
                long-running filters.")
  in
  let health_every =
    Arg.(
      value & opt int 0
      & info [ "health-every" ] ~docv:"N"
          ~doc:"Close a health window (windowed registry sampling plus the \
                default anomaly rules, evaluated on the wall clock) after \
                every N queries and at exit; fired health events print to \
                stderr as JSON lines. 0 (the default) disables the engine.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "identxxd" ~version:"1.0.0"
         ~doc:"ident++ daemon: answer queries from stdin")
      Term.(
        const run $ ip $ configs $ table $ peer $ cache_expires $ metrics
        $ metrics_every $ health_every)
  in
  exit (Cmd.eval' cmd)
